package diffverify

import (
	"errors"
	"strings"
	"testing"

	"opendesc/internal/nic"
)

// TestBundledNICsExhaustive is the tentpole acceptance check: the harness
// covers the full completion-path space of all six bundled NICs with zero
// four-way disagreements.
func TestBundledNICsExhaustive(t *testing.T) {
	models := nic.All()
	if len(models) != 6 {
		t.Fatalf("expected 6 bundled NICs, have %d", len(models))
	}
	for _, m := range models {
		rep, err := VerifyModel(m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if !rep.OK() {
			t.Errorf("%s: %s", m.Name, rep)
		}
		if rep.Paths == 0 || rep.Cases == 0 || rep.Checks == 0 {
			t.Errorf("%s: degenerate report %+v", m.Name, rep)
		}
		if !strings.Contains(rep.String(), "PASS") {
			t.Errorf("%s: report does not render PASS:\n%s", m.Name, rep)
		}
	}
}

// TestReportDeterministic: the harness uses no wall clock and no global RNG,
// so two runs over the same description render byte-identical reports.
func TestReportDeterministic(t *testing.T) {
	for _, m := range nic.All() {
		a, err := VerifyModel(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := VerifyModel(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s: report not deterministic:\n%s\nvs\n%s", m.Name, a, b)
		}
	}
}

// TestAblationCaught: a deliberately mis-offset accessor (the BreakAccessor
// ablation) must be caught on every NIC and reported as a minimal
// reproducer — the byte image zero everywhere except the failing field and
// the pinned discriminants.
func TestAblationCaught(t *testing.T) {
	for _, m := range nic.All() {
		rep, err := VerifyModel(m, Options{BreakAccessor: true})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if rep.OK() {
			t.Errorf("%s: broken accessor not caught", m.Name)
			continue
		}
		d := rep.Disagreements[0]
		if d.View != "accessor" {
			t.Errorf("%s: first disagreement view %q, want accessor", m.Name, d.View)
		}
		if d.Want == d.Got {
			t.Errorf("%s: reproducer does not diverge: %s", m.Name, d)
		}
		if len(d.Image) == 0 {
			t.Errorf("%s: reproducer has no byte image", m.Name)
		}
		if !strings.Contains(d.String(), "image") {
			t.Errorf("%s: reproducer rendering lacks the image:\n%s", m.Name, d)
		}
	}
}

// TestAblationReproducerMinimal checks the shrink: re-running the harness on
// e1000e with the ablation must yield a reproducer whose image carries only
// the failing field's bits (everything else zeroed to 0 by minimization,
// modulo the pinned discriminants which live in context registers, not in
// the record).
func TestAblationReproducerMinimal(t *testing.T) {
	m := nic.MustLoad("e1000e")
	rep, err := VerifyModel(m, Options{BreakAccessor: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("broken accessor not caught")
	}
	d := rep.Disagreements[0]
	paths, err := m.Paths()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if p.ID != d.PathID {
			continue
		}
		for _, f := range p.Fields {
			if f.Name == d.Field || f.WidthBits > 64 {
				continue
			}
			if v := readField(d.Image, f); v != 0 {
				t.Errorf("minimized image still carries %s=%#x", f.Name, v)
			}
		}
	}
}

// TestWideSemanticRejected: a description whose emitted semantic field
// exceeds 64 bits parses and checks fine but is structurally outside the
// accessor runtime's domain; the harness must reject it with a structured
// reason, never run it into a bitfield panic.
func TestWideSemanticRejected(t *testing.T) {
	m := nic.MustLoad("e1000e")
	src, err := WidenFirstSemantic(m.Source, 96)
	if err != nil {
		t.Fatal(err)
	}
	_, err = VerifySource("widened", src, Options{})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("want RejectedError, got %v", err)
	}
	if !strings.Contains(rej.Reason, "96 bits") {
		t.Errorf("reason does not name the width: %s", rej.Reason)
	}
}

// TestMalformedSourceRejected: parse and sema failures surface as structured
// rejections, not internal errors.
func TestMalformedSourceRejected(t *testing.T) {
	for _, src := range []string{
		"",
		"header h {",
		"header h { bit<8> a; } control C(in h x) { apply {} }",
	} {
		_, err := VerifySource("bad", src, Options{})
		var rej *RejectedError
		if !errors.As(err, &rej) {
			t.Errorf("source %q: want RejectedError, got %v", src, err)
		}
	}
}

// TestCertify: bundled sources certify as passed under their content digest;
// the widened source certifies as failed with the rejection as reason.
func TestCertify(t *testing.T) {
	m := nic.MustLoad("mlx5")
	cert := Certify(m.Name, m.Source)
	if !cert.Passed {
		t.Fatalf("bundled %s failed certification: %s", m.Name, cert.Reason)
	}
	if cert.Digest == "" || cert.Paths == 0 || cert.Checks == 0 {
		t.Errorf("degenerate certificate %+v", cert)
	}
	src, err := WidenFirstSemantic(m.Source, 128)
	if err != nil {
		t.Fatal(err)
	}
	bad := Certify("mlx5-wide", src)
	if bad.Passed {
		t.Fatal("widened description certified as passed")
	}
	if bad.Reason == "" {
		t.Error("failed certificate carries no reason")
	}
}

// TestCertifyCached: the digest-keyed cache returns identical certificates
// without re-running the harness (same struct value both times).
func TestCertifyCached(t *testing.T) {
	m := nic.MustLoad("ice")
	a := CertifyCached(m.Name, m.Source)
	b := CertifyCached(m.Name, m.Source)
	if a != b {
		t.Errorf("cached certificates differ: %+v vs %+v", a, b)
	}
	if !a.Passed {
		t.Errorf("ice failed certification: %s", a.Reason)
	}
}

// TestBoundaryPatterns: the battery always includes zero, all-ones, and the
// sign bit, deduplicated.
func TestBoundaryPatterns(t *testing.T) {
	for _, w := range []int{1, 2, 7, 8, 31, 32, 63, 64} {
		pats := boundaryPatterns(w)
		seen := map[uint64]bool{}
		for _, p := range pats {
			if p > widthMask(w) {
				t.Errorf("width %d: pattern %#x exceeds mask", w, p)
			}
			if seen[p] {
				t.Errorf("width %d: duplicate pattern %#x", w, p)
			}
			seen[p] = true
		}
		if !seen[0] || !seen[widthMask(w)] || !seen[uint64(1)<<(w-1)] {
			t.Errorf("width %d: battery %v misses a required boundary", w, pats)
		}
	}
}
