package diffverify

import (
	"fmt"
	"strings"

	"opendesc/internal/core"
	"opendesc/internal/p4/interp"
	"opendesc/internal/p4/parser"
	"opendesc/internal/p4/sema"
)

// pathInterp is view C: the real P4 interpreter re-extracting a completion
// record through a parser synthesized from the path's static layout. Each
// layout position becomes one indexed header field (positions, not names,
// because duplicate emits repeat a source field at distinct offsets), so the
// interpreter's extraction cursor independently re-derives every offset.
type pathInterp struct {
	parser *interp.Parser
}

// newPathInterp synthesizes and binds the per-path parser program:
//
//	header dv_path_h { bit<W0> f0; bit<W1> f1; ... }
//	parser DVPathParser(desc_in din, out dv_path_h hdr) {
//	    state start { din.extract(hdr); transition accept; }
//	}
//
// and runs it through the production frontend (parse, sema, bind), so the
// comparison exercises the same code paths real descriptions do.
func newPathInterp(name string, p *core.Path) (*pathInterp, error) {
	var sb strings.Builder
	sb.WriteString("header dv_path_h {")
	for i, f := range p.Fields {
		fmt.Fprintf(&sb, " bit<%d> f%d;", f.WidthBits, i)
	}
	sb.WriteString(" }\n")
	sb.WriteString("parser DVPathParser(desc_in din, out dv_path_h hdr) {\n")
	sb.WriteString("    state start { din.extract(hdr); transition accept; }\n")
	sb.WriteString("}\n")
	prog, err := parser.Parse(fmt.Sprintf("%s_path%d.p4", name, p.ID), sb.String())
	if err != nil {
		return nil, fmt.Errorf("synthesized parser: %v", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("synthesized parser sema: %v", err)
	}
	inst, err := info.BindParser(prog.Parser("DVPathParser"), nil)
	if err != nil {
		return nil, fmt.Errorf("synthesized parser bind: %v", err)
	}
	ip, err := interp.New(info, inst, "")
	if err != nil {
		return nil, err
	}
	return &pathInterp{parser: ip}, nil
}

func (ip *pathInterp) run(img []byte) (*interp.Result, error) {
	return ip.parser.Run(img, nil)
}

// fieldName is the extracted-value key for layout position i.
func (ip *pathInterp) fieldName(i int) string {
	return fmt.Sprintf("hdr.f%d", i)
}
