// Package diffverify is the S27 differential-verification harness. For one
// interface description it enumerates the full completion-path space and
// asserts, for every discriminant branch and a battery of boundary field
// values, that four independently built views of each completion record
// agree bit for bit:
//
//	A. the static layout — core.EnumeratePaths offsets/widths;
//	B. an independent walk of the deparser CFG under a concrete environment,
//	   re-deriving what internal/nicsim's device serializer computes;
//	C. the P4 interpreter re-extracting the record through a synthesized
//	   per-path parser (internal/p4/interp);
//	D. the generated accessor runtime reading the record (internal/codegen);
//
// plus a SoftNIC-golden pass that pushes ground-truth packet metadata
// through the same write→read pipeline. Any disagreement is reported as a
// minimal (NIC, path, field, byte-image) reproducer.
//
// Descriptions the harness cannot soundly verify — semantic-tagged fields
// wider than 64 bits (the accessor runtime's bit reads top out at one word),
// completion-path explosions, conflicting context configurations — are
// rejected with a structured RejectedError rather than silently passed. The
// seeded P4 mutator (mutate.go) screens adversarial descriptions against
// exactly this contract, and fleet provisioning gates on the resulting
// Certificate: a description whose digest has not passed the harness is
// quarantined, never compiled for.
package diffverify

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"

	"opendesc/internal/bitfield"
	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/p4/parser"
	"opendesc/internal/p4/sema"
	"opendesc/internal/pkt"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
)

// Options tune one verification run.
type Options struct {
	// MaxPaths bounds path enumeration (0: core.DefaultMaxPaths). Exceeding
	// it is a structured rejection, not an error.
	MaxPaths int
	// Packets is the number of SoftNIC-golden packets pushed through each
	// path's write→read pipeline (0: 4).
	Packets int
	// MaxCases, when > 0, bounds the total environments checked per run.
	// Zero means exhaustive — the only setting a certificate may be issued
	// under; the cap exists for the fuzz screen, where adversarial switch
	// pyramids would otherwise make a single input arbitrarily slow. A
	// capped run reports how much it covered (Report.Cases), never silently
	// pretends completeness.
	MaxCases int
	// BreakAccessor deliberately mis-offsets the first hardware accessor of
	// every path by one bit — the ablation proving the harness catches a
	// codegen bug as a minimal reproducer.
	BreakAccessor bool
}

// maxDisagreements caps the reproducers collected per run; the first one is
// what matters, the cap only keeps a badly broken triad from flooding.
const maxDisagreements = 16

// RejectedError is a structured refusal to verify: the description is not in
// the harness's soundly-checkable domain. Fleet provisioning treats it like a
// failed certificate (quarantine with this reason); the mutator treats it as
// a legitimate screen outcome.
type RejectedError struct {
	Reason string
}

func (e *RejectedError) Error() string { return "diffverify: rejected: " + e.Reason }

// Disagreement is one four-way divergence, minimized to the smallest
// environment that still reproduces it: every field zero except the failing
// one and the pinned discriminants.
type Disagreement struct {
	NIC         string
	PathID      int
	Constraints []string // pinned discriminants selecting the path
	View        string   // which view diverged: walk, interp, accessor, layout
	Field       string   // dotted layout field name
	Semantic    string
	OffsetBits  int
	WidthBits   int
	Image       []byte // completion byte-image reproducing the divergence
	Want        uint64 // the static view's value
	Got         uint64 // the diverging view's value
	Detail      string
}

// Summary is the one-line form used in certificates and violation reports.
func (d *Disagreement) Summary() string {
	return fmt.Sprintf("path %d field %s bits[%d:%d) view %s: static=%#x got=%#x",
		d.PathID, d.Field, d.OffsetBits, d.OffsetBits+d.WidthBits, d.View, d.Want, d.Got)
}

// String renders the full minimal reproducer.
func (d *Disagreement) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "disagreement: nic=%s path=%d view=%s\n", d.NIC, d.PathID, d.View)
	fmt.Fprintf(&sb, "  field %s", d.Field)
	if d.Semantic != "" {
		fmt.Fprintf(&sb, " (semantic %s)", d.Semantic)
	}
	fmt.Fprintf(&sb, " bits[%d:%d)\n", d.OffsetBits, d.OffsetBits+d.WidthBits)
	if len(d.Constraints) > 0 {
		fmt.Fprintf(&sb, "  when %s\n", strings.Join(d.Constraints, " && "))
	}
	fmt.Fprintf(&sb, "  image %x\n", d.Image)
	fmt.Fprintf(&sb, "  static=%#x %s=%#x", d.Want, d.View, d.Got)
	if d.Detail != "" {
		fmt.Fprintf(&sb, " (%s)", d.Detail)
	}
	sb.WriteString("\n")
	return sb.String()
}

// Report is the outcome of one verification run.
type Report struct {
	NIC   string
	Paths int
	// Cases counts the concrete environments checked (boundary sweeps plus
	// golden packets); Checks counts individual cross-view comparisons.
	Cases  int
	Checks int
	// Skipped counts walk cases whose environment was underdetermined for
	// the focus path (opaque or multi-valued discriminants) and resolved to
	// a different enumerated path — still verified, attributed there.
	Skipped       int
	Disagreements []*Disagreement
}

// OK reports whether all views agreed everywhere.
func (r *Report) OK() bool { return len(r.Disagreements) == 0 }

// String renders the pass/fail report with any reproducers.
func (r *Report) String() string {
	var sb strings.Builder
	verdict := "PASS"
	if !r.OK() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&sb, "diffverify %s: %s (%d paths, %d cases, %d checks, %d underdetermined)\n",
		r.NIC, verdict, r.Paths, r.Cases, r.Checks, r.Skipped)
	for _, d := range r.Disagreements {
		sb.WriteString(d.String())
	}
	return sb.String()
}

// Verify runs the differential harness over one checked description.
// A *RejectedError means the description is outside the harness's domain;
// any other error is an internal failure.
func Verify(name string, spec core.DeparserSpec, opts Options) (*Report, error) {
	g, err := core.BuildDeparserGraph(spec)
	if err != nil {
		return nil, &RejectedError{Reason: fmt.Sprintf("deparser graph: %v", err)}
	}
	paths, err := core.EnumeratePaths(g, core.EnumerateOptions{MaxPaths: opts.MaxPaths})
	if err != nil {
		return nil, &RejectedError{Reason: fmt.Sprintf("path enumeration: %v", err)}
	}
	rep := &Report{NIC: name, Paths: len(paths)}
	// Wide semantic fields are unverifiable today: bitfield.Read (and hence
	// every generated accessor) reads at most 64 bits, so a semantic-tagged
	// field beyond one word would panic at read time. Rejecting here is the
	// safety net: such a description must never reach a runtime.
	for _, p := range paths {
		for _, f := range p.Fields {
			if f.WidthBits > 64 && f.Semantic != "" {
				return nil, &RejectedError{Reason: fmt.Sprintf(
					"path %d: semantic field %s (%q) is %d bits wide; accessors read at most 64",
					p.ID, f.Name, f.Semantic, f.WidthBits)}
			}
		}
	}
	leaves := flattenParams(g)
	golden := softnic.Funcs()
	for _, p := range paths {
		pc, err := newPathChecker(name, g, paths, p, leaves, golden, opts, rep)
		if err != nil {
			return nil, err
		}
		if err := pc.run(); err != nil {
			return nil, err
		}
		if len(rep.Disagreements) >= maxDisagreements {
			break
		}
	}
	return rep, nil
}

// VerifySource parses and checks a bare P4 interface description and runs
// the harness over it. Parse and sema failures are structured rejections.
func VerifySource(name, src string, opts Options) (*Report, error) {
	prog, err := parser.Parse(name+".p4", src)
	if err != nil {
		return nil, &RejectedError{Reason: fmt.Sprintf("parse: %v", err)}
	}
	info, err := sema.Check(prog)
	if err != nil {
		return nil, &RejectedError{Reason: fmt.Sprintf("sema: %v", err)}
	}
	return Verify(name, core.DeparserSpec{Info: info}, opts)
}

// VerifyModel runs the harness over a bundled NIC model.
func VerifyModel(m *nic.Model, opts Options) (*Report, error) {
	return Verify(m.Name, m.Deparser, opts)
}

// Certificate is the fleet-facing verdict for one description, keyed by its
// content digest. Reason carries the rejection or the first disagreement
// when the description did not pass — the operator-visible quarantine text.
type Certificate struct {
	Digest string
	NIC    string
	Paths  int
	Cases  int
	Checks int
	Passed bool
	Reason string
}

// Certify runs the harness over a bare P4 source and summarizes the verdict.
func Certify(name, src string) Certificate {
	cert := Certificate{Digest: core.SourceDigest(src), NIC: name}
	rep, err := VerifySource(name, src, Options{})
	if err != nil {
		cert.Reason = err.Error()
		return cert
	}
	cert.Paths, cert.Cases, cert.Checks = rep.Paths, rep.Cases, rep.Checks
	if !rep.OK() {
		cert.Reason = "diffverify: " + rep.Disagreements[0].Summary()
		return cert
	}
	cert.Passed = true
	return cert
}

var (
	certMu    sync.Mutex
	certCache = make(map[string]Certificate)
)

// CertifyCached memoizes Certify by content digest. The fleet controller and
// the chaos diffverify oracle share this cache, so each distinct description
// is verified once per process regardless of fleet size or seed count.
func CertifyCached(name, src string) Certificate {
	digest := core.SourceDigest(src)
	certMu.Lock()
	c, ok := certCache[digest]
	certMu.Unlock()
	if ok {
		return c
	}
	c = Certify(name, src)
	certMu.Lock()
	certCache[digest] = c
	certMu.Unlock()
	return c
}

// leaf is one flattened ≤64-bit leaf field of a deparser parameter, the unit
// of the concrete environments the walk and the serializers run under.
type leaf struct {
	name  string // dotted, e.g. "pipe_meta.rss" or "ctx.use_rss"
	width int
}

// flattenParams collects every fixed-width leaf field of every composite
// deparser parameter (metadata and context alike) under its dotted name.
// Fields wider than 64 bits carry no environment value — exactly as in the
// device serializer they feed — but still occupy layout bits.
func flattenParams(g *core.Graph) []leaf {
	var out []leaf
	var rec func(prefix string, ct *sema.CompositeType)
	rec = func(prefix string, ct *sema.CompositeType) {
		for _, f := range ct.Fields {
			name := prefix + "." + f.Name
			if nested, ok := f.Type.(*sema.CompositeType); ok {
				rec(name, nested)
				continue
			}
			w := f.Type.BitWidth()
			if w <= 0 || w > 64 {
				continue
			}
			out = append(out, leaf{name: name, width: w})
		}
	}
	for _, p := range g.Instance().Params {
		if ct, ok := p.Type.(*sema.CompositeType); ok {
			rec(p.Name, ct)
		}
	}
	return out
}

// widthMask returns the w-bit all-ones mask (w in 1..64).
func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// boundaryPatterns is the per-width value battery: zero, all-ones, LSB, sign
// bit, and the two alternating cross-word patterns, deduplicated.
func boundaryPatterns(w int) []uint64 {
	mask := widthMask(w)
	cand := []uint64{
		0,
		mask,
		1,
		uint64(1) << (w - 1),
		0x5555555555555555 & mask,
		0xAAAAAAAAAAAAAAAA & mask,
	}
	var out []uint64
	seen := make(map[uint64]bool, len(cand))
	for _, v := range cand {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// mix is the splitmix64 finalizer: the repo-standard deterministic stream
// for filler values (no global RNG state, so reports are reproducible).
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pathChecker verifies one enumerated path under many environments.
type pathChecker struct {
	name   string
	g      *core.Graph
	paths  []*core.Path
	p      *core.Path
	leaves []leaf
	golden map[semantics.Name]codegen.SoftFunc
	opts   Options
	rep    *Report

	// uniq is the path's emitted ≤64-bit leaf set (first occurrence order);
	// fields may repeat in the layout (duplicate emits) but share one value.
	uniq []leaf
	// pins is the context assignment selecting this path.
	pins map[string]uint64
	// ip re-extracts the record through a synthesized per-path parser.
	ip *pathInterp
	// rt reads the record through per-path generated accessors.
	rt        *codegen.Runtime
	accessors []core.Accessor
}

func newPathChecker(name string, g *core.Graph, paths []*core.Path, p *core.Path,
	leaves []leaf, golden map[semantics.Name]codegen.SoftFunc, opts Options, rep *Report) (*pathChecker, error) {
	pins, err := core.ConfigAssignment(p.Constraints)
	if err != nil {
		return nil, &RejectedError{Reason: fmt.Sprintf("path %d: %v", p.ID, err)}
	}
	c := &pathChecker{
		name: name, g: g, paths: paths, p: p,
		leaves: leaves, golden: golden, opts: opts, rep: rep,
		pins: pins,
	}
	seen := make(map[string]bool)
	for _, f := range p.Fields {
		if f.WidthBits > 64 || seen[f.Name] {
			continue
		}
		seen[f.Name] = true
		c.uniq = append(c.uniq, leaf{name: f.Name, width: f.WidthBits})
	}
	if len(p.Fields) > 0 {
		c.ip, err = newPathInterp(name, p)
		if err != nil {
			return nil, fmt.Errorf("diffverify %s path %d: %w", name, p.ID, err)
		}
	}
	c.accessors = pathAccessors(p, opts.BreakAccessor)
	c.rt = codegen.NewRuntime(&core.Result{
		NIC:      name,
		Control:  g.Control,
		Graph:    g,
		Paths:    paths,
		Selected: core.Scored{Path: p},
		Config:   p.Constraints,
		Intent:   &core.Intent{Name: "diffverify"},
		Accessors: c.accessors,
	}, nil)
	return c, nil
}

// pathAccessors synthesizes one hardware accessor per semantic the path
// provides (first occurrence, like core's accessor synthesis). breakOne
// shifts the first accessor's window by one bit — the injected-bug ablation.
func pathAccessors(p *core.Path, breakOne bool) []core.Accessor {
	seen := make(map[semantics.Name]bool)
	var acc []core.Accessor
	for _, f := range p.Fields {
		if f.Semantic == "" || f.WidthBits > 64 || seen[f.Semantic] {
			continue
		}
		seen[f.Semantic] = true
		acc = append(acc, core.Accessor{
			Semantic:   f.Semantic,
			FieldName:  f.Name,
			OffsetBits: f.OffsetBits,
			WidthBits:  f.WidthBits,
			Hardware:   true,
		})
	}
	if breakOne && len(acc) > 0 {
		a := &acc[0]
		switch {
		case a.OffsetBits+a.WidthBits < p.SizeBits():
			a.OffsetBits++
		case a.OffsetBits > 0:
			a.OffsetBits--
		}
	}
	return acc
}

// capped reports whether the optional case budget is exhausted.
func (c *pathChecker) capped() bool {
	return c.opts.MaxCases > 0 && c.rep.Cases >= c.opts.MaxCases
}

// run sweeps the path: one all-filler baseline, a boundary battery focused
// on each emitted field, and the SoftNIC-golden packet pass.
func (c *pathChecker) run() error {
	if c.capped() {
		return nil
	}
	base := uint64(c.p.ID)<<32 ^ 0x51c3a9b2
	if err := c.checkCase(c.fillerVals(mix(base))); err != nil {
		return err
	}
	c.rep.Cases++
	for fi, f := range c.uniq {
		if _, pinned := c.pins[f.name]; pinned {
			continue
		}
		for pi, pat := range boundaryPatterns(f.width) {
			if c.capped() {
				return nil
			}
			vals := c.fillerVals(mix(base ^ uint64(fi)<<16 ^ uint64(pi)<<8))
			vals[f.name] = pat
			for k, v := range c.pins {
				vals[k] = v
			}
			if err := c.checkCase(vals); err != nil {
				return err
			}
			c.rep.Cases++
			if len(c.rep.Disagreements) >= maxDisagreements {
				return nil
			}
		}
	}
	return c.runGolden()
}

// runGolden pushes ground-truth packet metadata through the write→read
// pipeline: SoftNIC computes each semantic from a deterministic packet, the
// record is serialized with those values, and every view must read them
// back (masked to the field width, the documented truncation semantics).
func (c *pathChecker) runGolden() error {
	n := c.opts.Packets
	if n <= 0 {
		n = 4
	}
	for j := 0; j < n; j++ {
		if c.capped() {
			return nil
		}
		packet := goldenPacket(c.p.ID, j)
		vals := make(map[string]uint64, len(c.leaves))
		for _, l := range c.leaves {
			vals[l.name] = 0
		}
		for _, f := range c.p.Fields {
			if f.Semantic == "" || f.WidthBits > 64 {
				continue
			}
			if fn := c.golden[f.Semantic]; fn != nil {
				vals[f.Name] = fn(packet)
			}
		}
		for k, v := range c.pins {
			vals[k] = v
		}
		if err := c.checkCase(vals); err != nil {
			return err
		}
		c.rep.Cases++
		if len(c.rep.Disagreements) >= maxDisagreements {
			return nil
		}
	}
	return nil
}

func goldenPacket(pathID, j int) []byte {
	return pkt.NewBuilder().
		WithIPv4([4]byte{10, byte(pathID), byte(j >> 8), byte(j)}, [4]byte{10, 0, 0, 1}).
		WithUDP(uint16(2000+j%251), uint16(53+j%7)).
		WithPayload(make([]byte, 16+(pathID*7+j*3)%96)).
		Build()
}

// fillerVals builds a deterministic full environment: every leaf gets a
// seeded splitmix value masked to its width, then the pins overlay.
func (c *pathChecker) fillerVals(seed uint64) map[string]uint64 {
	vals := make(map[string]uint64, len(c.leaves))
	for i, l := range c.leaves {
		vals[l.name] = mix(seed^uint64(i)) & widthMask(l.width)
	}
	for k, v := range c.pins {
		vals[k] = v
	}
	return vals
}

// env converts a value map into the evaluation environment the walk and the
// branch conditions see: each leaf masked to its declared width.
func (c *pathChecker) env(vals map[string]uint64) sema.MapEnv {
	env := make(sema.MapEnv, len(c.leaves))
	for _, l := range c.leaves {
		env[l.name] = sema.UintValue(vals[l.name]&widthMask(l.width), l.width)
	}
	return env
}

// staticImage serializes view A: each layout field's value written at its
// statically computed offset (fields beyond 64 bits stay zero, as in the
// device serializer).
func staticImage(p *core.Path, vals map[string]uint64) []byte {
	img := make([]byte, p.SizeBytes())
	for _, f := range p.Fields {
		if f.WidthBits > 64 {
			continue
		}
		bitfield.Write(img, f.OffsetBits, f.WidthBits, vals[f.Name]&widthMask(f.WidthBits))
	}
	return img
}

// checkCase runs all four views under one environment.
func (c *pathChecker) checkCase(vals map[string]uint64) error {
	img := staticImage(c.p, vals)
	c.checkInterp(img, vals)
	c.checkAccessors(img, vals)
	return c.checkWalk(img, vals)
}

// checkInterp re-extracts the static image through the synthesized per-path
// parser and compares every field value, the consumed bit count, and the
// accept verdict against the static view.
func (c *pathChecker) checkInterp(img []byte, vals map[string]uint64) {
	if c.ip == nil {
		return
	}
	res, err := c.ip.run(img)
	c.rep.Checks++
	if err != nil || !res.Accepted {
		detail := "parser rejected the record"
		if err != nil {
			detail = err.Error()
		}
		c.fail("interp", 0, img, vals, 0, 0, detail)
		return
	}
	if res.BitsConsumed != c.p.SizeBits() {
		c.fail("interp", 0, img, vals, uint64(c.p.SizeBits()), uint64(res.BitsConsumed),
			"consumed bit count diverges from static layout size")
		return
	}
	for i, f := range c.p.Fields {
		if f.WidthBits > 64 {
			continue
		}
		want := vals[f.Name] & widthMask(f.WidthBits)
		got := res.Values[c.ip.fieldName(i)]
		c.rep.Checks++
		if got != want {
			c.fail("interp", i, img, vals, want, got, "")
		}
	}
}

// checkAccessors reads every synthesized hardware accessor off the static
// image and compares against the environment value (view D).
func (c *pathChecker) checkAccessors(img []byte, vals map[string]uint64) {
	for _, a := range c.accessors {
		r := c.rt.Reader(a.Semantic)
		got := r.Read(img, nil)
		lf := c.p.Field(a.Semantic)
		want := vals[lf.Name] & widthMask(lf.WidthBits)
		c.rep.Checks++
		if got != want {
			fi := c.fieldIndex(lf)
			c.fail("accessor", fi, img, vals, want, got, string(a.Semantic))
		}
	}
}

// checkWalk serializes the record by independently walking the deparser CFG
// under the environment (view B) and compares layout and bytes against the
// static view of whichever enumerated path the walk resolves to.
func (c *pathChecker) checkWalk(img []byte, vals map[string]uint64) error {
	fields, wimg, err := walkSerialize(c.g, c.env(vals))
	if err != nil {
		// The walk cannot evaluate a discriminant (opaque condition over
		// values outside the environment): not verifiable, not a bug.
		return &RejectedError{Reason: fmt.Sprintf("path %d walk: %v", c.p.ID, err)}
	}
	q := matchPath(c.paths, fields)
	c.rep.Checks++
	if q == nil {
		c.fail("layout", 0, wimg, vals, 0, 0,
			fmt.Sprintf("walked layout (%d fields, %d bits) matches no enumerated path",
				len(fields), sizeBitsOf(fields)))
		return nil
	}
	qimg := img
	if q.ID != c.p.ID {
		// Underdetermined environment (multi-valued or opaque discriminant):
		// the walk took a sibling path. Verify it there and count the skip.
		c.rep.Skipped++
		qimg = staticImage(q, vals)
	}
	if !bytes.Equal(wimg, qimg) {
		_, f := firstImageDiff(q, wimg, qimg)
		d := &Disagreement{
			NIC:         c.name,
			PathID:      q.ID,
			Constraints: constraintStrings(q),
			View:        "walk",
			Field:       f.Name,
			Semantic:    string(f.Semantic),
			OffsetBits:  f.OffsetBits,
			WidthBits:   f.WidthBits,
			Image:       qimg,
			Want:        readField(qimg, f),
			Got:         readField(wimg, f),
			Detail:      "independent CFG-walk serialization diverges from static layout",
		}
		c.rep.Disagreements = append(c.rep.Disagreements, d)
	}
	return nil
}

func (c *pathChecker) fieldIndex(lf *core.LayoutField) int {
	for i := range c.p.Fields {
		if &c.p.Fields[i] == lf {
			return i
		}
	}
	return 0
}

// fail records a disagreement for field index fi, first shrinking the
// environment to the minimal one that still reproduces it: everything zero
// except the failing field and the pinned discriminants.
func (c *pathChecker) fail(view string, fi int, img []byte, vals map[string]uint64, want, got uint64, detail string) {
	f := c.p.Fields[fi]
	min := make(map[string]uint64, len(c.pins)+1)
	for _, l := range c.leaves {
		min[l.name] = 0
	}
	for k, v := range c.pins {
		min[k] = v
	}
	min[f.Name] = vals[f.Name]
	if mgot, fails := c.reproduce(view, fi, min); fails {
		vals = min
		img = staticImage(c.p, min)
		want = min[f.Name] & widthMask(f.WidthBits)
		got = mgot
	}
	d := &Disagreement{
		NIC:         c.name,
		PathID:      c.p.ID,
		Constraints: constraintStrings(c.p),
		View:        view,
		Field:       f.Name,
		Semantic:    string(f.Semantic),
		OffsetBits:  f.OffsetBits,
		WidthBits:   f.WidthBits,
		Image:       img,
		Want:        want,
		Got:         got,
		Detail:      detail,
	}
	c.rep.Disagreements = append(c.rep.Disagreements, d)
}

// reproduce recomputes one view's value for one field under a candidate
// minimal environment, reporting whether the divergence persists.
func (c *pathChecker) reproduce(view string, fi int, vals map[string]uint64) (uint64, bool) {
	f := c.p.Fields[fi]
	if f.WidthBits > 64 {
		return 0, false
	}
	img := staticImage(c.p, vals)
	want := vals[f.Name] & widthMask(f.WidthBits)
	switch view {
	case "interp":
		if c.ip == nil {
			return 0, false
		}
		res, err := c.ip.run(img)
		if err != nil || !res.Accepted {
			return 0, false
		}
		got := res.Values[c.ip.fieldName(fi)]
		return got, got != want
	case "accessor":
		if f.Semantic == "" {
			return 0, false
		}
		r := c.rt.Reader(f.Semantic)
		if r == nil {
			return 0, false
		}
		got := r.Read(img, nil)
		return got, got != want
	}
	return 0, false
}

// matchPath finds the enumerated path whose layout equals the walked field
// sequence (names, offsets, widths in order), or nil.
func matchPath(paths []*core.Path, fields []core.LayoutField) *core.Path {
	for _, p := range paths {
		if len(p.Fields) != len(fields) {
			continue
		}
		same := true
		for i := range fields {
			a, b := p.Fields[i], fields[i]
			if a.Name != b.Name || a.OffsetBits != b.OffsetBits || a.WidthBits != b.WidthBits {
				same = false
				break
			}
		}
		if same {
			return p
		}
	}
	return nil
}

func sizeBitsOf(fields []core.LayoutField) int {
	n := 0
	for _, f := range fields {
		n += f.WidthBits
	}
	return n
}

// firstImageDiff locates the first layout field whose bits differ between
// the two images (falling back to the path's first field).
func firstImageDiff(p *core.Path, a, b []byte) (int, core.LayoutField) {
	for i, f := range p.Fields {
		if f.WidthBits > 64 {
			continue
		}
		if readField(a, f) != readField(b, f) {
			return i, f
		}
	}
	if len(p.Fields) > 0 {
		return 0, p.Fields[0]
	}
	return 0, core.LayoutField{}
}

func readField(img []byte, f core.LayoutField) uint64 {
	if f.WidthBits <= 0 || f.WidthBits > 64 || f.OffsetBits+f.WidthBits > len(img)*8 {
		return 0
	}
	return bitfield.Read(img, f.OffsetBits, f.WidthBits)
}

func constraintStrings(p *core.Path) []string {
	out := make([]string, 0, len(p.Constraints))
	for _, cc := range p.Constraints {
		out = append(out, cc.String())
	}
	sort.Strings(out)
	return out
}
