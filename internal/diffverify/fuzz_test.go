package diffverify

import (
	"testing"

	"opendesc/internal/nic"
)

// FuzzMutate is the adversarial contract of the whole harness: for any
// source and seed, mutation is deterministic, and a mutant that survives
// sema either passes four-way verification or is rejected with a structured
// reason — never a panic, never a silent disagreement.
func FuzzMutate(f *testing.F) {
	for _, m := range nic.All() {
		f.Add(m.Source, uint64(1))
		f.Add(m.Source, uint64(0xdead_beef))
	}
	f.Add("header h { bit<8> a; }", uint64(7))
	f.Add(`header h { @semantic("pkt_len") bit<16> len; bit<48> pad; }
control CmptDeparser(in h meta, cmpt_out cq) { apply { cq.emit(meta); } }`, uint64(3))
	f.Fuzz(func(t *testing.T, src string, seed uint64) {
		out, ops, err := Mutate(src, seed)
		if err != nil {
			return // unparseable or unmutable input: nothing to screen
		}
		out2, ops2, err2 := Mutate(src, seed)
		if err2 != nil || out != out2 || ops != ops2 {
			t.Fatalf("mutation not deterministic for seed %#x", seed)
		}
		// MaxPaths and MaxCases are tightened so adversarial switch
		// pyramids and wide fan-outs bound the screen's work; exceeding
		// MaxPaths is a structured rejection like any other out-of-domain
		// description.
		v := screenSource("fuzz", out, Options{MaxPaths: 256, Packets: 1, MaxCases: 2048})
		switch v.Outcome {
		case OutcomePass, OutcomeRejected:
		case OutcomeDisagree:
			t.Fatalf("silent triad divergence (seed %#x, ops %s): %s\nmutant:\n%s", seed, ops, v.Reason, out)
		default:
			t.Fatalf("unexpected outcome %q", v.Outcome)
		}
	})
}
