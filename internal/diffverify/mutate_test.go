package diffverify

import (
	"reflect"
	"testing"

	"opendesc/internal/nic"
)

// TestMutateDeterministic: the mutator is a pure function of (src, seed) —
// the same pair yields a byte-identical description and op log.
func TestMutateDeterministic(t *testing.T) {
	for _, m := range nic.All() {
		for seed := uint64(0); seed < 16; seed++ {
			a, aops, aerr := Mutate(m.Source, seed)
			b, bops, berr := Mutate(m.Source, seed)
			if (aerr == nil) != (berr == nil) {
				t.Fatalf("%s seed %d: error mismatch %v vs %v", m.Name, seed, aerr, berr)
			}
			if a != b || aops != bops {
				t.Fatalf("%s seed %d: mutation not deterministic (ops %q vs %q)", m.Name, seed, aops, bops)
			}
		}
	}
}

// TestMutateChanges: mutants differ from their parent (an edit that reprints
// to the identical source would silently shrink the adversarial surface).
// Some ops (permute-headers, reorder of identical fields) can be no-ops, so
// this only requires that most seeds produce a change.
func TestMutateChanges(t *testing.T) {
	m := nic.MustLoad("e1000e")
	changed := 0
	const n = 32
	for seed := uint64(0); seed < n; seed++ {
		out, _, err := Mutate(m.Source, seed)
		if err != nil {
			continue
		}
		if out != m.Source {
			changed++
		}
	}
	if changed < n/2 {
		t.Errorf("only %d/%d mutants differ from the parent", changed, n)
	}
}

// TestSweepDeterministic is the ≥256-mutant acceptance check: the seeded
// sweep across all six bundled sources yields identical verdicts on a second
// run (same seed ⇒ same mutants ⇒ same verdicts), and no mutant that
// survives sema ever produces a silent four-way disagreement.
func TestSweepDeterministic(t *testing.T) {
	models := nic.All()
	perModel := 43 // 43 × 6 = 258 mutants ≥ 256
	counts := map[string]int{}
	total := 0
	for _, m := range models {
		a := Sweep(m.Name, m.Source, 0xd1f5_0001, perModel)
		b := Sweep(m.Name, m.Source, 0xd1f5_0001, perModel)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: sweep not deterministic", m.Name)
		}
		for _, v := range a {
			total++
			counts[v.Outcome]++
			if v.Outcome == OutcomeDisagree {
				t.Errorf("%s seed %#x ops %s: silent triad divergence: %s", m.Name, v.Seed, v.Ops, v.Reason)
			}
		}
	}
	if total < 256 {
		t.Fatalf("sweep screened only %d mutants, want ≥256", total)
	}
	if counts[OutcomePass] == 0 {
		t.Error("no mutant passed — the sweep exercises nothing beyond rejection")
	}
	if counts[OutcomeRejected] == 0 {
		t.Error("no mutant was rejected — the structured-rejection screen is untested")
	}
	t.Logf("screened %d mutants: %v", total, counts)
}

// TestScreenWideResize: a resize landing a semantic field beyond 64 bits
// must screen as a structured rejection (the harness's wide-field guard),
// never as a panic. Mutate with handpicked seeds until one such resize
// appears in the op log.
func TestScreenWideResize(t *testing.T) {
	m := nic.MustLoad("qdma")
	found := false
	for seed := uint64(0); seed < 512 && !found; seed++ {
		v := Screen(m.Name, m.Source, seed)
		if v.Outcome == OutcomeRejected && v.Reason != "" {
			found = true
		}
	}
	if !found {
		t.Error("no mutant screened as rejected in 512 seeds")
	}
}

// TestWidenFirstSemanticTargetsCompletionPath: the widened field must be one
// the deparser actually emits, so fleet structural validation still passes
// while verification fails.
func TestWidenFirstSemanticTargetsCompletionPath(t *testing.T) {
	m := nic.MustLoad("e1000e")
	src, err := WidenFirstSemantic(m.Source, 96)
	if err != nil {
		t.Fatal(err)
	}
	if src == m.Source {
		t.Fatal("widening changed nothing")
	}
	// The mutated description must still pass the frontend (parse + sema),
	// i.e. be indistinguishable from a healthy one until the harness runs.
	ctName, fieldName, err := firstEmittedSemantic(src)
	if err != nil {
		t.Fatalf("widened source no longer analyzable: %v", err)
	}
	if ctName == "" || fieldName == "" {
		t.Fatal("no emitted semantic field resolved")
	}
}
