package diffverify

import (
	"errors"
	"fmt"
	"strings"

	"opendesc/internal/core"
	"opendesc/internal/p4/ast"
	"opendesc/internal/p4/parser"
	"opendesc/internal/p4/sema"
)

// Mutate applies 1–3 grammar-aware edits to a P4 interface description and
// reprints it: resized/reordered/split fields, flipped discriminant arms,
// injected pads, permuted switch-case bodies, duplicated or dropped emits,
// permuted header declarations. The mutation stream is fully determined by
// (src, seed): the same pair yields byte-identical output. The returned op
// log names the edits applied.
//
// Mutants are adversarial NICs beyond the bundled six: each must either pass
// the differential harness or be rejected with a structured reason (Screen);
// a panic or a silent disagreement is a compiler-triad bug.
func Mutate(src string, seed uint64) (out, ops string, err error) {
	prog, err := parser.Parse("mutant.p4", src)
	if err != nil {
		return "", "", fmt.Errorf("mutate: parse: %v", err)
	}
	r := &mrand{s: seed ^ 0x6a09e667f3bcc908}
	nops := 1 + r.intn(3)
	var applied []string
	for attempt := 0; len(applied) < nops && attempt < nops*8; attempt++ {
		if op := applyRandomOp(prog, r); op != "" {
			applied = append(applied, op)
		}
	}
	if len(applied) == 0 {
		return "", "", errors.New("mutate: no applicable edit site")
	}
	return ast.SprintProgram(prog), strings.Join(applied, ","), nil
}

// mrand is a splitmix64 stream: deterministic, allocation-free, and
// independent of any global RNG state.
type mrand struct{ s uint64 }

func (r *mrand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *mrand) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// resizeMenu spans the boundary widths the bitfield layer cares about, plus
// two beyond-word widths that must drive the harness into its structured
// wide-field rejection (never a panic).
var resizeMenu = []int{1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 128}

var padMenu = []int{1, 3, 8, 13, 32, 64}

// composite is a mutable view over a header or struct declaration.
type composite struct {
	name   string
	fields *[]*ast.Field
}

func collectComposites(prog *ast.Program) []composite {
	var out []composite
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.HeaderDecl:
			out = append(out, composite{name: d.Name, fields: &d.Fields})
		case *ast.StructDecl:
			out = append(out, composite{name: d.Name, fields: &d.Fields})
		}
	}
	return out
}

// stmtSite locates one statement inside a control body.
type stmtSite struct {
	block *ast.BlockStmt
	idx   int
}

type stmtSites struct {
	ifs      []*ast.IfStmt
	switches []*ast.SwitchStmt
	emits    []stmtSite
}

func collectStmts(prog *ast.Program) *stmtSites {
	s := &stmtSites{}
	var walk func(b *ast.BlockStmt)
	walk = func(b *ast.BlockStmt) {
		for i, st := range b.Stmts {
			switch st := st.(type) {
			case *ast.IfStmt:
				s.ifs = append(s.ifs, st)
				walk(st.Then)
				switch e := st.Else.(type) {
				case *ast.BlockStmt:
					walk(e)
				case *ast.IfStmt:
					walk(&ast.BlockStmt{Stmts: []ast.Stmt{e}})
				}
			case *ast.SwitchStmt:
				s.switches = append(s.switches, st)
				for _, c := range st.Cases {
					walk(c.Body)
				}
			case *ast.BlockStmt:
				walk(st)
			case *ast.CallStmt:
				if _, name := st.Call.Callee(); name == "emit" {
					s.emits = append(s.emits, stmtSite{block: b, idx: i})
				}
			}
		}
	}
	for _, d := range prog.Decls {
		if ctl, ok := d.(*ast.ControlDecl); ok && ctl.Apply != nil {
			walk(ctl.Apply)
		}
	}
	return s
}

func bitType(w int) *ast.BitType {
	return &ast.BitType{Width: &ast.IntLit{Value: uint64(w), Text: fmt.Sprintf("%d", w)}}
}

// applyRandomOp picks one edit kind and tries to apply it; "" means the
// chosen kind had no applicable site in this program.
func applyRandomOp(prog *ast.Program, r *mrand) string {
	comps := collectComposites(prog)
	stmts := collectStmts(prog)
	switch r.intn(9) {
	case 0: // resize a field
		if len(comps) == 0 {
			return ""
		}
		c := comps[r.intn(len(comps))]
		if len(*c.fields) == 0 {
			return ""
		}
		f := (*c.fields)[r.intn(len(*c.fields))]
		w := resizeMenu[r.intn(len(resizeMenu))]
		f.Type = bitType(w)
		return fmt.Sprintf("resize:%s.%s=%d", c.name, f.Name, w)
	case 1: // reorder two fields
		c := pickComposite(comps, r, 2)
		if c == nil {
			return ""
		}
		fs := *c.fields
		i := r.intn(len(fs))
		j := r.intn(len(fs) - 1)
		if j >= i {
			j++
		}
		fs[i], fs[j] = fs[j], fs[i]
		return fmt.Sprintf("reorder:%s.%s<->%s", c.name, fs[j].Name, fs[i].Name)
	case 2: // split a field into hi/lo halves
		if len(comps) == 0 {
			return ""
		}
		c := comps[r.intn(len(comps))]
		fs := *c.fields
		for off := 0; off < len(fs); off++ {
			fi := (r.intn(len(fs)) + off) % len(fs)
			f := fs[fi]
			bt, ok := f.Type.(*ast.BitType)
			if !ok {
				continue
			}
			lit, ok := bt.Width.(*ast.IntLit)
			if !ok || lit.Value < 2 || lit.Value > 1<<16 {
				continue
			}
			w := int(lit.Value)
			k := 1 + r.intn(w-1)
			hi := &ast.Field{Name: f.Name + "_hi", Type: bitType(k), Annots: f.Annots}
			lo := &ast.Field{Name: f.Name + "_lo", Type: bitType(w - k)}
			nf := append(append(append([]*ast.Field{}, fs[:fi]...), hi, lo), fs[fi+1:]...)
			*c.fields = nf
			return fmt.Sprintf("split:%s.%s@%d", c.name, f.Name, k)
		}
		return ""
	case 3: // flip a discriminant's arms
		for off := 0; off < len(stmts.ifs); off++ {
			if len(stmts.ifs) == 0 {
				break
			}
			s := stmts.ifs[(r.intn(len(stmts.ifs))+off)%len(stmts.ifs)]
			if e, ok := s.Else.(*ast.BlockStmt); ok {
				s.Then, s.Else = e, s.Then
				return "flip-if"
			}
		}
		return ""
	case 4: // inject a pad field
		if len(comps) == 0 {
			return ""
		}
		c := comps[r.intn(len(comps))]
		fs := *c.fields
		w := padMenu[r.intn(len(padMenu))]
		f := &ast.Field{Name: fmt.Sprintf("dv_pad_%04x", r.next()&0xffff), Type: bitType(w)}
		at := r.intn(len(fs) + 1)
		nf := append(append(append([]*ast.Field{}, fs[:at]...), f), fs[at:]...)
		*c.fields = nf
		return fmt.Sprintf("pad:%s+%d@%d", c.name, w, at)
	case 5: // permute switch-case bodies
		for off := 0; off < len(stmts.switches); off++ {
			if len(stmts.switches) == 0 {
				break
			}
			s := stmts.switches[(r.intn(len(stmts.switches))+off)%len(stmts.switches)]
			if len(s.Cases) < 2 {
				continue
			}
			i := r.intn(len(s.Cases))
			j := r.intn(len(s.Cases) - 1)
			if j >= i {
				j++
			}
			s.Cases[i].Body, s.Cases[j].Body = s.Cases[j].Body, s.Cases[i].Body
			return fmt.Sprintf("permute-case:%d<->%d", i, j)
		}
		return ""
	case 6: // drop an emit
		if len(stmts.emits) == 0 {
			return ""
		}
		site := stmts.emits[r.intn(len(stmts.emits))]
		b := site.block
		b.Stmts = append(append([]ast.Stmt{}, b.Stmts[:site.idx]...), b.Stmts[site.idx+1:]...)
		return fmt.Sprintf("drop-emit@%d", site.idx)
	case 7: // duplicate an emit
		if len(stmts.emits) == 0 {
			return ""
		}
		site := stmts.emits[r.intn(len(stmts.emits))]
		b := site.block
		st := b.Stmts[site.idx]
		nf := append(append(append([]ast.Stmt{}, b.Stmts[:site.idx+1]...), st), b.Stmts[site.idx+1:]...)
		b.Stmts = nf
		return fmt.Sprintf("dup-emit@%d", site.idx)
	case 8: // permute two header declarations
		var hs []int
		for i, d := range prog.Decls {
			if _, ok := d.(*ast.HeaderDecl); ok {
				hs = append(hs, i)
			}
		}
		if len(hs) < 2 {
			return ""
		}
		i := hs[r.intn(len(hs))]
		j := hs[r.intn(len(hs))]
		if i == j {
			return ""
		}
		prog.Decls[i], prog.Decls[j] = prog.Decls[j], prog.Decls[i]
		return "permute-headers"
	}
	return ""
}

// pickComposite returns a composite with at least minFields fields, or nil.
func pickComposite(comps []composite, r *mrand, minFields int) *composite {
	var cand []int
	for i, c := range comps {
		if len(*c.fields) >= minFields {
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 {
		return nil
	}
	return &comps[cand[r.intn(len(cand))]]
}

// Screen outcomes.
const (
	OutcomePass        = "pass"
	OutcomeRejected    = "rejected"
	OutcomeDisagree    = "disagree"
	OutcomeMutateError = "mutate-error"
)

// Verdict classifies one screened mutant.
type Verdict struct {
	Seed    uint64
	Ops     string
	Outcome string
	Reason  string
	Paths   int
	Cases   int
	Checks  int
}

// Screen generates one mutant of src and runs it through the harness.
// OutcomeDisagree means the mutant exposed a real triad divergence — the
// signal the whole exercise exists to find (and, for a healthy compiler,
// must never produce).
func Screen(name, src string, seed uint64) Verdict {
	out, ops, err := Mutate(src, seed)
	if err != nil {
		return Verdict{Seed: seed, Outcome: OutcomeMutateError, Reason: err.Error()}
	}
	v := screenSource(name, out, Options{})
	v.Seed, v.Ops = seed, ops
	return v
}

// screenSource classifies one already-mutated source.
func screenSource(name, src string, opts Options) Verdict {
	var v Verdict
	rep, err := VerifySource(name, src, opts)
	if err != nil {
		v.Outcome = OutcomeRejected
		var rej *RejectedError
		if errors.As(err, &rej) {
			v.Reason = rej.Reason
		} else {
			v.Reason = err.Error()
		}
		return v
	}
	v.Paths, v.Cases, v.Checks = rep.Paths, rep.Cases, rep.Checks
	if rep.OK() {
		v.Outcome = OutcomePass
	} else {
		v.Outcome = OutcomeDisagree
		v.Reason = rep.Disagreements[0].Summary()
	}
	return v
}

// Sweep screens n mutants of src under per-mutant seeds drawn from one
// master seed. Deterministic: the same (src, seed, n) yields the same
// verdict slice, element for element.
func Sweep(name, src string, seed uint64, n int) []Verdict {
	r := &mrand{s: seed}
	out := make([]Verdict, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Screen(name, src, r.next()))
	}
	return out
}

// WidenFirstSemantic returns src with the first @semantic-tagged field that
// is actually emitted on a completion path resized to the given width. With
// width > 64 the result still parses, checks, and passes fleet structural
// validation — but the harness rejects it (accessors read at most 64 bits),
// making it the canonical "valid-looking description that fails
// verification" for the ablation tests and the chaos fleet scenario.
func WidenFirstSemantic(src string, width int) (string, error) {
	ctName, fieldName, err := firstEmittedSemantic(src)
	if err != nil {
		return "", err
	}
	prog, err := parser.Parse("widen.p4", src)
	if err != nil {
		return "", fmt.Errorf("widen: parse: %v", err)
	}
	for _, c := range collectComposites(prog) {
		if c.name != ctName {
			continue
		}
		for _, f := range *c.fields {
			if f.Name == fieldName {
				f.Type = bitType(width)
				return ast.SprintProgram(prog), nil
			}
		}
	}
	return "", fmt.Errorf("widen: declaration %s.%s not found", ctName, fieldName)
}

// firstEmittedSemantic locates the declaring composite and field name of the
// first semantic-tagged field on the first completion path.
func firstEmittedSemantic(src string) (ctName, fieldName string, err error) {
	prog, err := parser.Parse("widen.p4", src)
	if err != nil {
		return "", "", fmt.Errorf("widen: parse: %v", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		return "", "", fmt.Errorf("widen: sema: %v", err)
	}
	g, err := core.BuildDeparserGraph(core.DeparserSpec{Info: info})
	if err != nil {
		return "", "", fmt.Errorf("widen: deparser graph: %v", err)
	}
	paths, err := core.EnumeratePaths(g, core.EnumerateOptions{})
	if err != nil {
		return "", "", fmt.Errorf("widen: paths: %v", err)
	}
	for _, p := range paths {
		for _, f := range p.Fields {
			if f.Semantic == "" {
				continue
			}
			// Resolve the dotted layout name (param.nested...leaf) to the
			// composite type that declares the leaf.
			parts := strings.Split(f.Name, ".")
			bp := g.Instance().Param(parts[0])
			if bp == nil {
				continue
			}
			t := bp.Type
			for _, seg := range parts[1 : len(parts)-1] {
				ct, ok := t.(*sema.CompositeType)
				if !ok {
					t = nil
					break
				}
				fi := ct.Field(seg)
				if fi == nil {
					t = nil
					break
				}
				t = fi.Type
			}
			if ct, ok := t.(*sema.CompositeType); ok {
				return ct.Name, parts[len(parts)-1], nil
			}
		}
	}
	return "", "", errors.New("widen: no semantic-tagged field on any completion path")
}
