package chaos

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestDeterministicTrace is the central determinism guarantee: the same
// (seed, config) pair produces a byte-identical trace on every run. The two
// runs execute concurrently so `go test -race` also proves the harness
// shares no hidden mutable state between runs.
func TestDeterministicTrace(t *testing.T) {
	scenarios := []Config{
		{Mode: ModeHarden, Steps: 256},
		{Mode: ModeHarden, Steps: 256, Queues: 3},
		{Mode: ModeEvolve, Steps: 256, NIC: "ice"},
	}
	for _, cfg := range scenarios {
		for seed := uint64(1); seed <= 3; seed++ {
			var wg sync.WaitGroup
			out := make([]*Result, 2)
			for i := range out {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					out[i] = Run(cfg, seed)
				}(i)
			}
			wg.Wait()
			if !bytes.Equal(out[0].Trace, out[1].Trace) {
				t.Fatalf("%s seed=%d: traces differ across runs:\n--- run A\n%s\n--- run B\n%s",
					cfg, seed, out[0].Trace, out[1].Trace)
			}
			if out[0].Violation != nil {
				t.Fatalf("%s seed=%d: unexpected violation: %v", cfg, seed, out[0].Violation)
			}
		}
	}
}

// TestCleanSweep runs a small seed corpus over every bundled NIC in both
// modes and expects every oracle to hold (descbench e18 is the 10k-case
// version of this).
func TestCleanSweep(t *testing.T) {
	for _, nic := range []string{"e1000", "e1000e", "ice", "ixgbe", "mlx5", "qdma"} {
		for _, mode := range []Mode{ModeHarden, ModeEvolve} {
			cfg := Config{NIC: nic, Mode: mode, Steps: 192}
			for seed := uint64(1); seed <= 4; seed++ {
				if res := Run(cfg, seed); res.Violation != nil {
					t.Errorf("%s seed=%d: %v\ntrace tail:\n%s",
						cfg, seed, res.Violation, tail(res.Trace, 12))
				}
			}
		}
	}
}

// TestResyncBugCaughtAndShrunk re-opens the known pre-resync liveness bug
// (DisableResync: a lost completion leaves its packet pending forever) and
// proves the pipeline end to end: an oracle catches it, the shrinker
// minimizes it to a handful of events, and the emitted spec replays to the
// same violation.
func TestResyncBugCaughtAndShrunk(t *testing.T) {
	cfg := Config{Mode: ModeHarden, Steps: 256, DisableResync: true}
	var seed uint64
	var res *Result
	for s := uint64(1); s <= 64; s++ {
		if r := Run(cfg, s); r.Violation != nil {
			seed, res = s, r
			break
		}
	}
	if res == nil {
		t.Fatal("no seed in 1..64 tripped an oracle with the resync path disabled")
	}
	if o := res.Violation.Oracle; o != "stuck-pending" && o != "delivery-complete" {
		t.Fatalf("expected the liveness bug to trip stuck-pending or delivery-complete, got %v", res.Violation)
	}

	sh := ShrinkToSpec(cfg, Generate(cfg, seed), res.Violation)
	t.Logf("shrunk %d -> %d events (oracle %s)", cfg.Steps, len(sh.Schedule.Events), sh.Result.Violation.Oracle)
	if len(sh.Schedule.Events) > 10 {
		t.Errorf("shrunk reproducer has %d events, want <= 10:\n%s", len(sh.Schedule.Events), sh.Spec)
	}
	if sh.Result.Violation.Oracle != res.Violation.Oracle {
		t.Errorf("shrink drifted from oracle %s to %s", res.Violation.Oracle, sh.Result.Violation.Oracle)
	}

	// The spec must replay to the same oracle.
	cfg2, s2, err := ParseSpec(sh.Spec)
	if err != nil {
		t.Fatalf("parsing emitted spec: %v\n%s", err, sh.Spec)
	}
	replay := RunSchedule(cfg2, s2)
	if replay.Violation == nil || replay.Violation.Oracle != res.Violation.Oracle {
		t.Fatalf("spec replay got %v, want oracle %s\n%s", replay.Violation, res.Violation.Oracle, sh.Spec)
	}
	// And a shrunk schedule replays deterministically: same trace both times.
	if again := RunSchedule(cfg2, s2); !bytes.Equal(again.Trace, replay.Trace) {
		t.Error("shrunk reproducer replays with a different trace")
	}
}

// TestSpecRoundTrip checks FormatSpec/ParseSpec over a generated schedule.
func TestSpecRoundTrip(t *testing.T) {
	cfg := Config{NIC: "mlx5", Mode: ModeEvolve, Queues: 2, Steps: 64, DisableResync: true}
	s := Generate(cfg, 77)
	spec := FormatSpec(cfg, s, &Violation{Oracle: "exactly-once", Step: 3, Detail: "x"})
	cfg2, s2, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec: %v\n%s", err, spec)
	}
	if cfg2.NIC != "mlx5" || cfg2.Mode != ModeEvolve || cfg2.Queues != 2 ||
		cfg2.RingEntries != 64 || !cfg2.DisableResync {
		t.Errorf("config did not round-trip: %+v", cfg2)
	}
	if got, want := strings.Join(cfg2.Semantics, ","), "rss,vlan,pkt_len"; got != want {
		t.Errorf("semantics round-trip: got %s, want %s", got, want)
	}
	if s2.Seed != 77 || !reflect.DeepEqual(s.Events, s2.Events) {
		t.Errorf("schedule did not round-trip (seed %d, %d vs %d events)", s2.Seed, len(s.Events), len(s2.Events))
	}
}

// TestSpecParseErrors exercises the spec parser's failure modes.
func TestSpecParseErrors(t *testing.T) {
	for _, bad := range []string{
		"event rx q0\n",                       // no config line
		"config nic=e1000e\nevent frob q0\n",  // unknown event
		"config nic=e1000e\nevent fault q0 zap\n", // unknown fault class
		"config bogus=1\n",                    // unknown config key
		"config queues\n",                     // not key=value
		"banana split\n",                      // unknown directive
	} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}

// TestViolationDump checks that a violating run with a dump directory writes
// a non-empty .odfl flight postmortem.
func TestViolationDump(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Mode: ModeHarden, Steps: 256, DisableResync: true, DumpDir: dir}
	var res *Result
	for s := uint64(1); s <= 64; s++ {
		if r := Run(cfg, s); r.Violation != nil {
			res = r
			break
		}
	}
	if res == nil {
		t.Fatal("no violating seed found")
	}
	if len(res.DumpFiles) == 0 {
		t.Fatal("violation produced no dump files")
	}
	for _, f := range res.DumpFiles {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("dump file: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("dump file %s is empty", f)
		}
	}
}

// TestParseMode covers the mode parser.
func TestParseMode(t *testing.T) {
	if m, err := ParseMode("evolve"); err != nil || m != ModeEvolve {
		t.Errorf("ParseMode(evolve) = %v, %v", m, err)
	}
	if m, err := ParseMode("harden"); err != nil || m != ModeHarden {
		t.Errorf("ParseMode(harden) = %v, %v", m, err)
	}
	if _, err := ParseMode("yolo"); err == nil {
		t.Error("ParseMode(yolo) succeeded")
	}
}

// tail returns the last n lines of a trace for failure messages.
func tail(trace []byte, n int) string {
	lines := strings.Split(strings.TrimRight(string(trace), "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}
