package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"opendesc/internal/faults"
	"opendesc/internal/workload"
)

// Op is a scheduler event kind.
type Op uint8

const (
	// OpRx offers the next trace packet to a queue's driver.
	OpRx Op = iota
	// OpPoll drains a queue's completion ring through the delivery handler.
	OpPoll
	// OpAdvance moves the shared virtual clock forward by Arg nanoseconds.
	OpAdvance
	// OpFault arms a one-shot scripted fault (Arg is the faults.Class) on a
	// queue's injector; it fires on that queue's next matching operation.
	OpFault
	// OpHang wedges a queue's device for Arg operations.
	OpHang
	// OpMixShift switches a queue's application read-mix to phase Arg.
	OpMixShift
)

// Event is one deterministic scheduler step.
type Event struct {
	Op  Op
	Q   uint8  // target queue (ignored by OpAdvance)
	Arg uint64 // OpAdvance: ns; OpFault: class; OpHang: burst; OpMixShift: phase
}

// String renders the event in the reproducer-spec grammar.
func (e Event) String() string {
	switch e.Op {
	case OpRx:
		return fmt.Sprintf("rx q%d", e.Q)
	case OpPoll:
		return fmt.Sprintf("poll q%d", e.Q)
	case OpAdvance:
		return fmt.Sprintf("advance %d", e.Arg)
	case OpFault:
		return fmt.Sprintf("fault q%d %s", e.Q, faults.Class(e.Arg))
	case OpHang:
		return fmt.Sprintf("hang q%d %d", e.Q, e.Arg)
	case OpMixShift:
		return fmt.Sprintf("mixshift q%d %d", e.Q, e.Arg)
	}
	return fmt.Sprintf("op%d q%d %d", e.Op, e.Q, e.Arg)
}

// Schedule is a finite event sequence plus the PRNG seed that (a) generated
// it and (b) seeds the fault injectors on replay.
type Schedule struct {
	Seed   uint64
	Events []Event
}

// rng is splitmix64 — tiny, fast, and stable across Go releases (math/rand's
// stream is not part of its compatibility promise, and a chaos seed corpus
// must replay bit-for-bit forever).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// scriptableClasses are the fault classes OpFault may arm per mode. Hardened
// drivers take the full matrix; evolving drivers only the classes the
// control plane is specified to survive (NAK — an unhardened datapath makes
// no claims about corrupted or lost completions).
func scriptableClasses(m Mode) []faults.Class {
	if m == ModeEvolve {
		return []faults.Class{faults.NAK}
	}
	return []faults.Class{
		faults.Corrupt, faults.Truncate, faults.Replay,
		faults.Duplicate, faults.Drop, faults.NAK,
	}
}

// Generate draws the event schedule for (cfg, seed). Same inputs ⇒ same
// schedule, always: the only entropy source is the splitmix64 stream, and
// every draw happens in a fixed order.
func Generate(cfg Config, seed uint64) Schedule {
	cfg = cfg.withDefaults()
	r := &rng{s: seed}
	classes := scriptableClasses(cfg.Mode)
	s := Schedule{Seed: seed, Events: make([]Event, 0, cfg.Steps)}
	for i := 0; i < cfg.Steps; i++ {
		q := uint8(r.intn(cfg.Queues))
		ev := Event{Q: q}
		switch roll := r.intn(100); {
		case roll < 46:
			ev.Op = OpRx
		case roll < 72:
			ev.Op = OpPoll
		case roll < 82:
			ev.Op = OpAdvance
			ev.Q = 0 // advance is global; a zero queue keeps specs round-trippable
			ev.Arg = uint64(1+r.intn(4096)) * 256
		case roll < 92:
			ev.Op = OpFault
			ev.Arg = uint64(classes[r.intn(len(classes))])
		case roll < 96:
			ev.Op = OpHang
			ev.Arg = uint64(1 + r.intn(24))
		default:
			ev.Op = OpMixShift
			ev.Arg = uint64(r.intn(cfg.Mixes.NumPhases()))
		}
		s.Events = append(s.Events, ev)
	}
	return s
}

// FormatSpec renders a self-contained, replayable reproducer: the scenario
// config, the injector seed, and every event, one per line. ParseSpec
// round-trips it.
func FormatSpec(cfg Config, s Schedule, v *Violation) string {
	cfg = cfg.withDefaults()
	var b strings.Builder
	b.WriteString("# opendesc chaos reproducer\n")
	if v != nil {
		fmt.Fprintf(&b, "# oracle %s fired at step %d (q%d): %s\n", v.Oracle, v.Step, v.Queue, v.Detail)
	}
	fmt.Fprintf(&b, "config %s seed=%d\n", cfg, s.Seed)
	for _, ev := range s.Events {
		fmt.Fprintf(&b, "event %s\n", ev)
	}
	return b.String()
}

// ParseSpec parses a reproducer back into a runnable (Config, Schedule).
func ParseSpec(text string) (Config, Schedule, error) {
	var cfg Config
	var s Schedule
	sawConfig := false
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "config":
			if err := parseSpecConfig(fields[1:], &cfg, &s); err != nil {
				return cfg, s, fmt.Errorf("chaos: spec line %d: %w", ln+1, err)
			}
			sawConfig = true
		case "event":
			ev, err := parseSpecEvent(fields[1:])
			if err != nil {
				return cfg, s, fmt.Errorf("chaos: spec line %d: %w", ln+1, err)
			}
			s.Events = append(s.Events, ev)
		default:
			return cfg, s, fmt.Errorf("chaos: spec line %d: unknown directive %q", ln+1, fields[0])
		}
	}
	if !sawConfig {
		return cfg, s, fmt.Errorf("chaos: spec has no config line")
	}
	return cfg, s, nil
}

func parseSpecConfig(kvs []string, cfg *Config, s *Schedule) error {
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("config item %q is not key=value", kv)
		}
		switch k {
		case "nic":
			cfg.NIC = v
		case "mode":
			m, err := ParseMode(v)
			if err != nil {
				return err
			}
			cfg.Mode = m
		case "queues":
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("queues: %w", err)
			}
			cfg.Queues = n
		case "ring":
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("ring: %w", err)
			}
			cfg.RingEntries = n
		case "sems":
			cfg.Semantics = strings.Split(v, ",")
		case "resync":
			cfg.DisableResync = v == "off"
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return fmt.Errorf("seed: %w", err)
			}
			s.Seed = n
		default:
			return fmt.Errorf("unknown config key %q", k)
		}
	}
	return nil
}

func parseSpecEvent(fields []string) (Event, error) {
	var ev Event
	if len(fields) == 0 {
		return ev, fmt.Errorf("empty event")
	}
	parseQ := func(i int) error {
		if i >= len(fields) || !strings.HasPrefix(fields[i], "q") {
			return fmt.Errorf("event %q: missing queue", strings.Join(fields, " "))
		}
		n, err := strconv.Atoi(fields[i][1:])
		if err != nil {
			return fmt.Errorf("event queue %q: %w", fields[i], err)
		}
		ev.Q = uint8(n)
		return nil
	}
	parseArg := func(i int) error {
		if i >= len(fields) {
			return fmt.Errorf("event %q: missing argument", strings.Join(fields, " "))
		}
		n, err := strconv.ParseUint(fields[i], 10, 64)
		if err != nil {
			return fmt.Errorf("event argument %q: %w", fields[i], err)
		}
		ev.Arg = n
		return nil
	}
	switch fields[0] {
	case "rx":
		ev.Op = OpRx
		return ev, parseQ(1)
	case "poll":
		ev.Op = OpPoll
		return ev, parseQ(1)
	case "advance":
		ev.Op = OpAdvance
		return ev, parseArg(1)
	case "fault":
		ev.Op = OpFault
		if err := parseQ(1); err != nil {
			return ev, err
		}
		if len(fields) < 3 {
			return ev, fmt.Errorf("fault event: missing class")
		}
		for _, c := range faults.Classes() {
			if c.String() == fields[2] {
				ev.Arg = uint64(c)
				return ev, nil
			}
		}
		return ev, fmt.Errorf("fault event: unknown class %q", fields[2])
	case "hang":
		ev.Op = OpHang
		if err := parseQ(1); err != nil {
			return ev, err
		}
		return ev, parseArg(2)
	case "mixshift":
		ev.Op = OpMixShift
		if err := parseQ(1); err != nil {
			return ev, err
		}
		return ev, parseArg(2)
	}
	return ev, fmt.Errorf("unknown event %q", fields[0])
}

// defaultMixes is a helper for callers (CLI, bench) that want the same
// derived three-phase schedule withDefaults builds.
func defaultMixes(sems []string) workload.MixSchedule {
	return workload.MustMixSchedule(
		workload.Mix(sems),
		workload.Mix(sems[:1]),
		workload.Mix{},
	)
}
