package chaos

import (
	"bytes"
	"testing"

	"opendesc/internal/fleet"
)

// TestFleetChaosSweep runs the fleet control plane through seeded chaos
// schedules — traffic, polls, link partitions/heals, alternating benign
// and tampered rollouts — and requires zero oracle violations: exactly-once
// delivery everywhere, garbage reads only on known-bad trial generations,
// tampered upgrades never promoted, conservation exact after the drain.
func TestFleetChaosSweep(t *testing.T) {
	cfg := FleetConfig{Hosts: 8, Steps: 512}
	var rollouts, promotions, rollbacks, reverts uint64
	for seed := uint64(1); seed <= 16; seed++ {
		res := RunFleet(cfg, seed)
		if res.Violation != nil {
			t.Fatalf("seed %d: %v\ntrace tail:\n%s", seed, res.Violation, tail(res.Trace, 2000))
		}
		if res.Accepted != res.Delivered {
			t.Fatalf("seed %d: accepted %d != delivered %d", seed, res.Accepted, res.Delivered)
		}
		rollouts += res.Rollouts
		promotions += res.Promotions
		rollbacks += res.Rollbacks
		reverts += res.LeaseReverts
	}
	// The sweep must actually exercise the machinery, not vacuously pass.
	if rollouts == 0 || promotions == 0 || rollbacks == 0 {
		t.Fatalf("sweep exercised rollouts=%d promotions=%d rollbacks=%d — schedule too tame",
			rollouts, promotions, rollbacks)
	}
	t.Logf("sweep: %d rollouts, %d promotions, %d rollbacks, %d lease reverts",
		rollouts, promotions, rollbacks, reverts)
}

// TestFleetDeterministicTrace: same (cfg, seed) ⇒ byte-identical trace.
func TestFleetDeterministicTrace(t *testing.T) {
	cfg := FleetConfig{Hosts: 6, Steps: 256}
	a := RunFleet(cfg, 42)
	b := RunFleet(cfg, 42)
	if a.Violation != nil || b.Violation != nil {
		t.Fatalf("violations: %v / %v", a.Violation, b.Violation)
	}
	if !bytes.Equal(a.Trace, b.Trace) {
		t.Fatal("traces differ for identical (cfg, seed)")
	}
	c := RunFleet(cfg, 43)
	if bytes.Equal(a.Trace, c.Trace) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestFleetControllerPartition scripts the tentpole degradation scenario
// directly (no randomness): partition every control link mid-bake, let the
// trial lease expire, verify the hosts revert to last-known-good and keep
// serving; heal, verify the controller rolls the orphaned rollout back and
// a follow-up rollout promotes.
func TestFleetControllerPartition(t *testing.T) {
	res := RunFleet(FleetConfig{Hosts: 6, Steps: 512, LeaseNs: 1 << 16}, 7)
	if res.Violation != nil {
		t.Fatalf("%v\ntrace tail:\n%s", res.Violation, tail(res.Trace, 2000))
	}
	// With a short lease and partition events at ~10% of the schedule,
	// lease-driven LKG degradation must actually occur.
	if res.LeaseReverts == 0 {
		t.Fatal("no lease reverts — partitions never stranded a trial; scenario too tame")
	}
	if res.Accepted != res.Delivered {
		t.Fatalf("conservation: accepted %d != delivered %d", res.Accepted, res.Delivered)
	}
}

// TestFleetTelemetryTampering: with host 1 forging clean telemetry
// (counters zeroed, anomalies stripped, report re-sealed with a valid
// digest), the controller's counter cross-check must quarantine it as soon
// as the forgery actually hides evidence — and must never quarantine an
// honest host. The per-seed telemetry oracle inside RunFleet enforces
// both; this sweep additionally requires the rejection machinery to have
// actually fired somewhere, and the traces to stay byte-identical per
// seed with forging enabled.
func TestFleetTelemetryTampering(t *testing.T) {
	cfg := FleetConfig{Hosts: 8, Steps: 512, ForgedTelemetry: true}
	var reports, rejects uint64
	for seed := uint64(1); seed <= 16; seed++ {
		res := RunFleet(cfg, seed)
		if res.Violation != nil {
			t.Fatalf("seed %d: %v\ntrace tail:\n%s", seed, res.Violation, tail(res.Trace, 2000))
		}
		if res.Accepted != res.Delivered {
			t.Fatalf("seed %d: accepted %d != delivered %d", seed, res.Accepted, res.Delivered)
		}
		again := RunFleet(cfg, seed)
		if !bytes.Equal(res.Trace, again.Trace) {
			t.Fatalf("seed %d: forged-telemetry traces differ between identical runs", seed)
		}
		reports += res.TelemetryReports
		rejects += res.TelemetryRejects
	}
	if reports == 0 || rejects == 0 {
		t.Fatalf("sweep exercised reports=%d rejects=%d — forged reports never caught; scenario too tame",
			reports, rejects)
	}
	t.Logf("tampering sweep: %d reports absorbed, %d forged reports rejected", reports, rejects)
}

// TestFleetCacheReconciles: across a whole chaos run the compile-cache
// counters reconcile and the heterogeneous fleet keeps the hit rate high
// (many hosts per distinct description).
func TestFleetCacheReconciles(t *testing.T) {
	res := RunFleet(FleetConfig{Hosts: 24, Steps: 384}, 11)
	if res.Violation != nil {
		t.Fatalf("%v", res.Violation)
	}
	if res.CacheHitRate < 0.5 {
		t.Fatalf("cache hit rate %.3f on a 24-host/6-description fleet", res.CacheHitRate)
	}
}

var _ = fleet.PhaseIdle
