// Package chaos is a deterministic simulation harness for the full OpenDesc
// stack, in the FoundationDB style: devices (nicsim), the hardened driver
// (Harden), the live renegotiation control plane (evolve), fault injection
// (faults) and shifting application read-mixes (workload) all run under a
// single seeded virtual-time scheduler, so any run — including any *failing*
// run — is reproducible from (seed, config) alone.
//
// The scheduler draws a finite schedule of events from a splitmix64 PRNG:
// packet arrivals, polls, virtual-clock advances, scripted fault injections,
// device hangs, and read-mix shifts, interleaved across one or more driver
// queues. After every event a library of invariant oracles is checked:
//
//   - exactly-once — every accepted packet is delivered exactly once, in
//     order, per queue;
//   - golden-metadata — every semantic read returns the SoftNIC ground-truth
//     value (zero garbage reads), on the hardware path and the soft path;
//   - stuck-pending — a pending packet with an empty completion ring and a
//     healthy device must have been delivered by the preceding Poll (the
//     liveness invariant the PR 3 resync path exists for);
//   - generation-monotonic — the evolve generation never decreases and
//     advances at most one epoch per step;
//   - bounded-degraded — SoftNIC degraded mode is exited within a bounded
//     number of operations once the device is healthy again;
//   - metrics-consistency — driver, device, ring, injector and
//     flight-recorder counters agree with each other and with the harness's
//     own accounting;
//   - diffverify — the description under test holds a passing S27
//     differential-verification certificate (static layout, CFG walk,
//     interpreter, generated accessors and SoftNIC golden all agree on every
//     completion path) before any schedule executes.
//
// A violating run can be handed to the shrinker (shrink.go), which
// delta-debugs the event schedule down to a minimal reproducer and renders
// it as a replayable spec plus an .odfl flight dump.
package chaos

import (
	"fmt"
	"strings"

	"opendesc"
	"opendesc/internal/codegen"
	"opendesc/internal/diffverify"
	"opendesc/internal/faults"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/vclock"
	"opendesc/internal/workload"
)

// Mode selects which driver stack a chaos run exercises.
type Mode int

const (
	// ModeHarden runs pinned hardened drivers (validator, watchdog, SoftNIC
	// degraded mode) and throws the full fault-class matrix at them.
	ModeHarden Mode = iota
	// ModeEvolve runs evolving drivers (live renegotiation) under shifting
	// read-mixes, restricted to the fault classes the control plane is
	// specified to survive (config NAKs and device hangs — an unhardened
	// datapath has no defense against corrupted or lost completions, so
	// injecting those would test a property the stack does not claim).
	ModeEvolve
)

func (m Mode) String() string {
	if m == ModeEvolve {
		return "evolve"
	}
	return "harden"
}

// ParseMode parses "harden" or "evolve".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "harden":
		return ModeHarden, nil
	case "evolve":
		return ModeEvolve, nil
	}
	return 0, fmt.Errorf("chaos: unknown mode %q (have harden, evolve)", s)
}

// Config describes one chaos scenario. The zero value is a usable default
// (single hardened e1000e queue, rss+vlan+pkt_len).
type Config struct {
	// NIC is the bundled model name (default "e1000e").
	NIC string
	// Mode selects the driver stack under test.
	Mode Mode
	// Semantics is the compiled intent (default rss, vlan, pkt_len).
	Semantics []string
	// Queues is how many independent driver queues the scheduler interleaves
	// (default 1, max 8); queue i's device reports QueueID i.
	Queues int
	// RingEntries sizes each device's completion ring (default 64 — small
	// rings expose wrap-around and backpressure interleavings).
	RingEntries int
	// Steps is the schedule length Generate draws (default 512).
	Steps int
	// Mixes is the read-mix phase schedule mix-shift events walk. The
	// default derives three phases from Semantics: all fields, first field
	// only (the abrupt 100%-flip), and the empty mix.
	Mixes workload.MixSchedule
	// Workload shapes the packet trace (default: workload.DefaultSpec with
	// 256 packets, reused modulo).
	Workload workload.Spec
	// DegradeThreshold / MaxResetBackoff tune the hardened watchdog; chaos
	// defaults (4 / 64) are small so the recovery ladder runs often and the
	// degraded-residency bound stays tight.
	DegradeThreshold int
	MaxResetBackoff  int
	// DisableResync deliberately re-opens the pre-PR3 lost-completion
	// liveness bug (HardenOptions.DisableResync) so tests can prove the
	// oracles catch it. Never set outside a test or a canary run.
	DisableResync bool
	// VerifyOverride, when non-empty, substitutes this P4 source for the
	// bundled description in the S27 diffverify oracle — a test hook proving
	// the oracle fires. The datapath still runs the bundled model: in
	// production an unverified description never gets that far, which is
	// exactly the property the hook demonstrates.
	VerifyOverride string
	// DumpDir, when non-empty, receives an .odfl flight dump of the
	// violating queue when an oracle fires.
	DumpDir string
}

func (c Config) withDefaults() Config {
	if c.NIC == "" {
		c.NIC = "e1000e"
	}
	if len(c.Semantics) == 0 {
		c.Semantics = []string{"rss", "vlan", "pkt_len"}
	}
	if c.Queues <= 0 {
		c.Queues = 1
	}
	if c.Queues > 8 {
		c.Queues = 8
	}
	if c.RingEntries <= 0 {
		c.RingEntries = 64
	}
	if c.Steps <= 0 {
		c.Steps = 512
	}
	if c.Mixes.NumPhases() == 0 {
		c.Mixes = defaultMixes(c.Semantics)
	}
	if c.Workload.Packets == 0 {
		c.Workload = workload.DefaultSpec()
		c.Workload.Packets = 256
	}
	if c.DegradeThreshold <= 0 {
		c.DegradeThreshold = 4
	}
	if c.MaxResetBackoff <= 0 {
		c.MaxResetBackoff = 64
	}
	return c
}

// String renders the scenario as the key=value line the reproducer spec and
// the trace header carry. Deterministic (no maps).
func (c Config) String() string {
	c = c.withDefaults()
	s := fmt.Sprintf("nic=%s mode=%s queues=%d ring=%d sems=%s",
		c.NIC, c.Mode, c.Queues, c.RingEntries, strings.Join(c.Semantics, ","))
	if c.DisableResync {
		s += " resync=off"
	}
	return s
}

// Violation reports one invariant breach: which oracle fired, at which
// schedule step, on which queue, and why.
type Violation struct {
	Oracle string
	Step   int
	Queue  int
	Detail string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("chaos: oracle %s violated at step %d (q%d): %s", v.Oracle, v.Step, v.Queue, v.Detail)
}

// Result is the outcome of one chaos run.
type Result struct {
	// Violation is nil when every oracle held through the whole schedule
	// plus the final drain.
	Violation *Violation
	// Trace is the deterministic step-by-step run log: same (seed, config)
	// ⇒ byte-identical Trace.
	Trace []byte
	// Events is how many schedule events executed (less than the schedule
	// length when a violation stopped the run early).
	Events int

	Accepted  uint64 // packets the drivers accepted
	Delivered uint64 // packets handed to the Poll handler
	Rejected  uint64 // Rx refusals (backpressure or wedged device)

	Switchovers uint64 // completed evolve generation swaps
	Rollbacks   uint64 // evolve switchovers rolled back
	Restores    uint64 // hardened watchdog hardware restores
	Quarantined uint64 // completion records quarantined
	Resyncs     uint64 // lost completions resynchronized in software

	// DumpFiles lists the .odfl flight dumps written for a violation (only
	// when Config.DumpDir was set).
	DumpFiles []string
}

// queue is the per-driver-queue harness state.
type queue struct {
	drv *opendesc.Driver
	inj *faults.Injector

	// fifo holds accepted-but-undelivered packets in arrival order — the
	// exactly-once oracle's expectation.
	fifo      [][]byte
	accepted  uint64
	delivered uint64
	rejected  uint64

	mixPhase int
	lastGen  uint64
	// degradedHealthyOps counts consecutive events observed with the driver
	// degraded while the injector is NOT wedged — the bounded-degraded
	// oracle's residency clock.
	degradedHealthyOps int

	// viol records the first violation the delivery handler detected (the
	// handler cannot abort the Poll that invoked it).
	viol *Violation
}

// runner executes one schedule.
type runner struct {
	cfg    Config
	clk    *vclock.Virtual
	trace  *workload.Trace
	queues []*queue
	golden map[semantics.Name]codegen.SoftFunc
	// consts maps device-state semantics to their per-queue pinned values
	// (queue_id differs per queue).
	consts []map[semantics.Name]uint64
	nextPkt int
	log     strings.Builder
	res     *Result
}

// Run generates the schedule for (cfg, seed) and executes it. Any failure is
// reproducible from the same (cfg, seed) pair.
func Run(cfg Config, seed uint64) *Result {
	return RunSchedule(cfg, Generate(cfg, seed))
}

// RunSchedule executes an explicit event schedule (the replay and shrink
// entry point). The schedule's seed feeds the fault injectors' PRNGs so
// scripted corruptions flip the same bits on replay.
func RunSchedule(cfg Config, s Schedule) *Result {
	cfg = cfg.withDefaults()
	r := &runner{cfg: cfg, clk: vclock.NewVirtual(1), res: &Result{}}
	if v := r.verifyDescription(); v != nil {
		r.res.Violation = v
		r.res.Trace = []byte(r.log.String())
		return r.res
	}
	if err := r.setup(s.Seed); err != nil {
		// A scenario that cannot even open its drivers is a configuration
		// error, reported as a violation of the "setup" pseudo-oracle so
		// sweeps surface it instead of panicking.
		r.res.Violation = &Violation{Oracle: "setup", Detail: err.Error()}
		r.res.Trace = []byte(r.log.String())
		return r.res
	}
	fmt.Fprintf(&r.log, "chaos %s seed=%d events=%d\n", cfg, s.Seed, len(s.Events))

	for i, ev := range s.Events {
		r.exec(i, ev)
		r.res.Events = i + 1
		if v := r.check(i, ev); v != nil {
			r.fail(v)
			return r.finish()
		}
	}
	r.drain(len(s.Events))
	return r.finish()
}

// verifyDescription is the S27 diffverify oracle: before the schedule runs,
// the description of record must hold a passing differential-verification
// certificate. Certificates are digest-cached process-wide, so repeated runs
// and sweeps pay for one harness execution per distinct description.
func (r *runner) verifyDescription() *Violation {
	name, src := r.cfg.NIC, r.cfg.VerifyOverride
	if src == "" {
		m, err := nic.Load(r.cfg.NIC)
		if err != nil {
			return nil // setup will report the load failure with full context
		}
		src = m.Source
	}
	if cert := diffverify.CertifyCached(name, src); !cert.Passed {
		fmt.Fprintf(&r.log, "VIOLATION diffverify: %s\n", cert.Reason)
		return &Violation{Oracle: "diffverify", Detail: cert.Reason}
	}
	return nil
}

// setup opens one driver per queue on a shared virtual clock.
func (r *runner) setup(seed uint64) error {
	tr, err := workload.Generate(r.cfg.Workload)
	if err != nil {
		return err
	}
	r.trace = tr
	r.golden = softnic.Funcs()

	intent, err := opendesc.NewIntent("chaos_intent", r.cfg.Semantics...)
	if err != nil {
		return err
	}
	for qi := 0; qi < r.cfg.Queues; qi++ {
		devCfg := nicsim.Config{
			RingEntries: r.cfg.RingEntries,
			QueueID:     uint16(qi),
			Clock:       r.clk,
		}
		var drv *opendesc.Driver
		switch r.cfg.Mode {
		case ModeEvolve:
			drv, err = opendesc.OpenWith(r.cfg.NIC, intent, opendesc.OpenOptions{
				Evolve: &opendesc.EvolveOptions{
					Interval:  64,
					MinWindow: 32,
					// Never let wall-clock shim measurements into the
					// re-solve: renegotiation decisions must be a pure
					// function of the schedule.
					MinShimSamples: ^uint64(0),
					Device:         devCfg,
					Clock:          r.clk,
				},
			})
		default:
			drv, err = opendesc.OpenWith(r.cfg.NIC, intent, opendesc.OpenOptions{
				Harden: &opendesc.HardenOptions{
					// The golden-metadata oracle asserts the deep-validation
					// guarantee (zero garbage reads even under record
					// corruption), so chaos always arms the deep tier —
					// structural validation alone cannot catch a flipped bit
					// in a non-redundant field like rss.
					Deep:             true,
					DegradeThreshold: r.cfg.DegradeThreshold,
					MaxResetBackoff:  r.cfg.MaxResetBackoff,
					DisableResync:    r.cfg.DisableResync,
					Clock:            r.clk,
				},
				Device: devCfg,
			})
		}
		if err != nil {
			return fmt.Errorf("queue %d: %w", qi, err)
		}
		inj := faults.New(faults.Plan{Seed: seed ^ uint64(qi)<<32})
		drv.InjectFaults(inj)
		r.queues = append(r.queues, &queue{drv: drv, inj: inj})
		r.consts = append(r.consts, map[semantics.Name]uint64{
			semantics.QueueID:    uint64(qi),
			semantics.Mark:       0,
			semantics.CryptoCtx:  0,
			semantics.LROSegs:    1,
			semantics.SegCnt:     1,
			semantics.RXDropHint: 0,
		})
	}
	return nil
}

// handler returns the Poll delivery handler for queue qi: it enforces the
// exactly-once and golden-metadata oracles on every delivery.
func (r *runner) handler(qi int, step int) func([]byte, opendesc.Meta) {
	q := r.queues[qi]
	mix := r.cfg.Mixes.Phase(q.mixPhase)
	return func(p []byte, m opendesc.Meta) {
		q.delivered++
		if q.viol != nil {
			return
		}
		if len(q.fifo) == 0 {
			q.viol = &Violation{Oracle: "exactly-once", Step: step, Queue: qi,
				Detail: fmt.Sprintf("delivery %d with no packet outstanding (duplicate or spurious)", q.delivered)}
			return
		}
		if &p[0] != &q.fifo[0][0] {
			q.viol = &Violation{Oracle: "exactly-once", Step: step, Queue: qi,
				Detail: fmt.Sprintf("delivery %d out of order", q.delivered)}
			return
		}
		q.fifo = q.fifo[1:]
		for _, sem := range mix {
			v, ok := m.Get(sem)
			if !ok {
				q.viol = &Violation{Oracle: "golden-metadata", Step: step, Queue: qi,
					Detail: fmt.Sprintf("read of %s not linked", sem)}
				return
			}
			name := semantics.Name(sem)
			if name == semantics.Timestamp {
				continue // device timeline vs soft zero: excluded from golden
			}
			if want, isConst := r.consts[qi][name]; isConst {
				if v != want {
					q.viol = &Violation{Oracle: "golden-metadata", Step: step, Queue: qi,
						Detail: fmt.Sprintf("%s = %d, device state pins %d", sem, v, want)}
					return
				}
				continue
			}
			if f := r.golden[name]; f != nil {
				if want := f(p); v != want {
					q.viol = &Violation{Oracle: "golden-metadata", Step: step, Queue: qi,
						Detail: fmt.Sprintf("%s = %d, SoftNIC ground truth %d (garbage read)", sem, v, want)}
					return
				}
			}
		}
	}
}

// exec executes one schedule event and appends its trace line.
func (r *runner) exec(step int, ev Event) {
	qi := int(ev.Q) % len(r.queues)
	q := r.queues[qi]
	switch ev.Op {
	case OpRx:
		p := r.trace.Packets[r.nextPkt%len(r.trace.Packets)]
		r.nextPkt++
		if q.drv.Rx(p) {
			q.accepted++
			q.fifo = append(q.fifo, p)
		} else {
			q.rejected++
		}
	case OpPoll:
		q.drv.Poll(r.handler(qi, step))
	case OpAdvance:
		r.clk.Advance(ev.Arg)
	case OpFault:
		q.inj.ScriptNext(faults.Class(ev.Arg))
	case OpHang:
		q.inj.ScriptHang(int(ev.Arg))
	case OpMixShift:
		q.mixPhase = int(ev.Arg) % r.cfg.Mixes.NumPhases()
	}
	hard := q.drv.Hardening()
	deg := 0
	if hard.Degraded {
		deg = 1
	}
	fmt.Fprintf(&r.log, "%04d %-16s q%d acc=%d del=%d pend=%d gen=%d deg=%d\n",
		step, ev, qi, q.accepted, q.delivered, q.drv.PendingPackets(),
		q.drv.Evolution().Generation, deg)
}

// drain flushes every queue after the schedule: polls until all queues are
// empty and healthy, bounded so a liveness bug turns into a violation
// instead of an endless loop. Clock time advances each round so time-based
// residency keeps moving.
func (r *runner) drain(step int) {
	const maxRounds = 20000
	for round := 0; round < maxRounds; round++ {
		done := true
		for qi, q := range r.queues {
			q.drv.Poll(r.handler(qi, step))
			if q.viol != nil {
				r.fail(q.viol)
				return
			}
			if v := r.oracles(step, qi); v != nil {
				r.fail(v)
				return
			}
			if q.drv.PendingPackets() > 0 || q.drv.Hardening().Degraded {
				done = false
			}
		}
		r.clk.Advance(1000)
		if done {
			break
		}
	}
	for qi, q := range r.queues {
		if q.accepted != q.delivered {
			r.fail(&Violation{Oracle: "delivery-complete", Step: step, Queue: qi,
				Detail: fmt.Sprintf("delivered %d of %d accepted packets after drain", q.delivered, q.accepted)})
			return
		}
	}
	fmt.Fprintf(&r.log, "drain complete\n")
}

// check runs the per-step oracles for the event just executed.
func (r *runner) check(step int, ev Event) *Violation {
	qi := int(ev.Q) % len(r.queues)
	if v := r.queues[qi].viol; v != nil {
		return v
	}
	// stuck-pending is only decidable right after a Poll on that queue: a
	// pending packet whose completion was just lost is legitimately stuck
	// until the next Poll resynchronizes it.
	if ev.Op == OpPoll {
		q := r.queues[qi]
		hard := q.drv.Hardening()
		if q.drv.PendingPackets() > 0 &&
			q.drv.DeviceStats().Ring.Produced == q.drv.DeviceStats().Ring.Consumed &&
			!hard.Degraded && !q.inj.Hung() {
			return &Violation{Oracle: "stuck-pending", Step: step, Queue: qi,
				Detail: fmt.Sprintf("%d packets pending with an empty ring and a healthy device after Poll", q.drv.PendingPackets())}
		}
	}
	for i := range r.queues {
		if v := r.oracles(step, i); v != nil {
			return v
		}
	}
	return nil
}

// oracles runs the always-on per-queue invariants (generation monotonicity,
// bounded degraded residency, cross-counter consistency).
func (r *runner) oracles(step, qi int) *Violation {
	q := r.queues[qi]
	ev := q.drv.Evolution()
	if ev.Generation < q.lastGen {
		return &Violation{Oracle: "generation-monotonic", Step: step, Queue: qi,
			Detail: fmt.Sprintf("generation went backwards: %d -> %d", q.lastGen, ev.Generation)}
	}
	if ev.Generation > q.lastGen+1 {
		return &Violation{Oracle: "generation-monotonic", Step: step, Queue: qi,
			Detail: fmt.Sprintf("generation jumped %d -> %d in one step", q.lastGen, ev.Generation)}
	}
	q.lastGen = ev.Generation

	hard := q.drv.Hardening()
	if hard.Degraded && !q.inj.Hung() {
		q.degradedHealthyOps++
		if bound := 4*r.cfg.MaxResetBackoff + 64; q.degradedHealthyOps > bound {
			return &Violation{Oracle: "bounded-degraded", Step: step, Queue: qi,
				Detail: fmt.Sprintf("degraded for %d ops past device recovery (bound %d)", q.degradedHealthyOps, bound)}
		}
	} else {
		q.degradedHealthyOps = 0
	}

	return r.consistent(step, qi)
}

// consistent cross-checks driver, device, ring, injector and flight-recorder
// counters against each other and the harness's own accounting.
func (r *runner) consistent(step, qi int) *Violation {
	q := r.queues[qi]
	ds := q.drv.DeviceStats()
	bad := func(detail string, args ...any) *Violation {
		return &Violation{Oracle: "metrics-consistency", Step: step, Queue: qi,
			Detail: fmt.Sprintf(detail, args...)}
	}
	if ds.Ring.Consumed > ds.Ring.Produced {
		return bad("ring consumed %d > produced %d", ds.Ring.Consumed, ds.Ring.Produced)
	}
	if got := q.delivered + uint64(q.drv.PendingPackets()); q.accepted != got {
		return bad("accepted %d != delivered %d + pending %d", q.accepted, q.delivered, q.drv.PendingPackets())
	}
	inj := q.inj.Stats()
	if inj.Injected[faults.Drop] != ds.LostCompletions {
		return bad("injector dropped %d completions, device lost %d", inj.Injected[faults.Drop], ds.LostCompletions)
	}
	hard := q.drv.Hardening()
	if hard.Resets > hard.ResetAttempts {
		return bad("resets %d > reset attempts %d", hard.Resets, hard.ResetAttempts)
	}
	if hard.HardwareRestores > hard.Resets {
		return bad("hardware restores %d > resets %d", hard.HardwareRestores, hard.Resets)
	}
	evs := q.drv.Evolution()
	pm := q.drv.Flight().Postmortems()
	if low := hard.DegradedEnters + hard.HardwareRestores + evs.Rollbacks; pm < low {
		return bad("flight postmortems %d < degraded enters %d + restores %d + rollbacks %d",
			pm, hard.DegradedEnters, hard.HardwareRestores, evs.Rollbacks)
	}
	if high := hard.DegradedEnters + hard.HardwareRestores + evs.Rollbacks + inj.Resets + 1; pm > high {
		return bad("flight postmortems %d > ceiling %d", pm, high)
	}
	return nil
}

// fail records the violation, writes its trace line, and (when a dump dir is
// configured) snapshots the violating queue's flight recorder to an .odfl
// postmortem.
func (r *runner) fail(v *Violation) {
	r.res.Violation = v
	fmt.Fprintf(&r.log, "VIOLATION %s step=%d q%d: %s\n", v.Oracle, v.Step, v.Queue, v.Detail)
	if r.cfg.DumpDir != "" && v.Queue < len(r.queues) {
		rec := r.queues[v.Queue].drv.Flight()
		rec.SetDumpDir(r.cfg.DumpDir)
		rec.Postmortem("chaos-" + v.Oracle)
		r.res.DumpFiles = rec.DumpFiles()
	}
}

// finish folds the per-queue counters into the result.
func (r *runner) finish() *Result {
	for _, q := range r.queues {
		r.res.Accepted += q.accepted
		r.res.Delivered += q.delivered
		r.res.Rejected += q.rejected
		hard := q.drv.Hardening()
		r.res.Quarantined += hard.Quarantined
		r.res.Resyncs += hard.ResyncDrops
		r.res.Restores += hard.HardwareRestores
		evs := q.drv.Evolution()
		r.res.Switchovers += evs.Switchovers
		r.res.Rollbacks += evs.Rollbacks
	}
	r.res.Trace = []byte(r.log.String())
	return r.res
}
