package chaos

import (
	"strings"
	"testing"

	"opendesc/internal/diffverify"
	"opendesc/internal/nic"
)

// TestDiffverifyOracleFires: a description that fails differential
// verification trips the diffverify oracle before a single schedule event
// executes — the datapath never opens on an uncertified description.
func TestDiffverifyOracleFires(t *testing.T) {
	m := nic.MustLoad("e1000e")
	src, err := diffverify.WidenFirstSemantic(m.Source, 96)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(Config{NIC: "e1000e", VerifyOverride: src, Steps: 64}, 1)
	if res.Violation == nil {
		t.Fatal("unverifiable description ran without a violation")
	}
	if res.Violation.Oracle != "diffverify" {
		t.Fatalf("oracle %q fired, want diffverify", res.Violation.Oracle)
	}
	if !strings.Contains(res.Violation.Detail, "96 bits") {
		t.Errorf("violation detail %q does not carry the harness rejection", res.Violation.Detail)
	}
	if res.Events != 0 {
		t.Errorf("%d events executed on an uncertified description, want 0", res.Events)
	}
}

// TestDiffverifyOracleClean: every bundled description certifies, so the
// oracle is silent on ordinary runs (and the certificate cache keeps the
// per-run cost at one map lookup).
func TestDiffverifyOracleClean(t *testing.T) {
	for _, m := range nic.All() {
		res := Run(Config{NIC: m.Name, Steps: 32}, 7)
		if res.Violation != nil && res.Violation.Oracle == "diffverify" {
			t.Errorf("%s: diffverify oracle fired on a bundled description: %s", m.Name, res.Violation.Detail)
		}
	}
}

// TestFleetMutatedDescription is the S27 end-to-end gating scenario: one
// host republishes its description with a semantic field widened past the
// accessor domain (digest and capability claims recomputed, so structural
// validation passes). The run must bootstrap with that host quarantined for
// a verification reason, and the verified-gating oracle holds through the
// whole schedule — the host never receives a provision, trial, or
// promotion, while the rest of the fleet rolls out normally.
func TestFleetMutatedDescription(t *testing.T) {
	cfg := FleetConfig{Hosts: 6, Steps: 384, MutatedDescription: true}
	var promotions uint64
	for seed := uint64(1); seed <= 6; seed++ {
		res := RunFleet(cfg, seed)
		if res.Violation != nil {
			t.Fatalf("seed %d: %v\ntrace tail:\n%s", seed, res.Violation, tail(res.Trace, 2000))
		}
		if res.Accepted != res.Delivered {
			t.Fatalf("seed %d: accepted %d != delivered %d", seed, res.Accepted, res.Delivered)
		}
		promotions += res.Promotions
	}
	// The fleet around the quarantined host must still make progress, or the
	// scenario proves gating by proving nothing rolled out at all.
	if promotions == 0 {
		t.Fatal("no promotions across the sweep — the healthy fleet made no progress")
	}
}

// TestFleetMutatedDescriptionDeterministic: the gating scenario replays to
// a byte-identical trace (the harness and certificate cache add no
// nondeterminism).
func TestFleetMutatedDescriptionDeterministic(t *testing.T) {
	cfg := FleetConfig{Hosts: 6, Steps: 192, MutatedDescription: true}
	a := RunFleet(cfg, 11)
	b := RunFleet(cfg, 11)
	if a.Violation != nil || b.Violation != nil {
		t.Fatalf("violations: %v / %v", a.Violation, b.Violation)
	}
	if string(a.Trace) != string(b.Trace) {
		t.Fatal("traces differ for identical (cfg, seed)")
	}
}
