package chaos

import "fmt"

// Shrink delta-debugs a violating schedule down to a minimal reproducer: the
// smallest event subsequence (under ddmin's 1-minimality) that still fires
// the SAME oracle. It returns the minimized schedule and the result of its
// final (violating) run.
//
// Matching on the oracle name — rather than "any violation" — keeps the
// shrinker honest: removing events can surface a *different* failure, and a
// reproducer that drifts to another oracle is a new bug report, not a
// smaller version of this one.
//
// Each candidate is a full deterministic re-run (RunSchedule), so the result
// is trustworthy by construction: the returned schedule has actually been
// executed and actually violates.
func Shrink(cfg Config, s Schedule, oracle string) (Schedule, *Result) {
	// Candidate runs don't dump: ddmin executes dozens of violating
	// schedules, and only the final minimized reproducer deserves an .odfl.
	candCfg := cfg
	candCfg.DumpDir = ""
	reproduces := func(events []Event) *Result {
		r := RunSchedule(candCfg, Schedule{Seed: s.Seed, Events: events})
		if r.Violation != nil && r.Violation.Oracle == oracle {
			return r
		}
		return nil
	}

	events := append([]Event(nil), s.Events...)
	last := reproduces(events)
	if last == nil {
		// The input doesn't reproduce (wrong oracle, or not violating at
		// all) — nothing to shrink.
		return s, RunSchedule(cfg, s)
	}

	// Classic ddmin: partition into n chunks, try each complement, refine
	// granularity on failure, restart coarse on success.
	n := 2
	for len(events) >= 2 {
		chunk := (len(events) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(events); lo += chunk {
			hi := lo + chunk
			if hi > len(events) {
				hi = len(events)
			}
			cand := append(append([]Event(nil), events[:lo]...), events[hi:]...)
			if r := reproduces(cand); r != nil {
				events, last = cand, r
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(events) {
				break // 1-minimal: no single event can be removed
			}
			n = min(n*2, len(events))
		}
	}
	min := Schedule{Seed: s.Seed, Events: events}
	if cfg.DumpDir != "" {
		// One final run with dumping enabled so the minimal reproducer — and
		// only it — leaves an .odfl postmortem behind.
		last = RunSchedule(cfg, min)
	}
	return min, last
}

// ShrinkResult packages a shrunk reproducer for reporting.
type ShrinkResult struct {
	Schedule Schedule
	Result   *Result
	Spec     string
}

// ShrinkToSpec shrinks and renders the replayable reproducer spec.
func ShrinkToSpec(cfg Config, s Schedule, v *Violation) ShrinkResult {
	min, res := Shrink(cfg, s, v.Oracle)
	if res.Violation == nil {
		// Shouldn't happen (Shrink only returns violating schedules when the
		// input violates), but keep the spec honest if it does.
		return ShrinkResult{Schedule: min, Result: res,
			Spec: fmt.Sprintf("# chaos: shrink lost the %s violation\n%s", v.Oracle, FormatSpec(cfg, min, nil))}
	}
	return ShrinkResult{Schedule: min, Result: res, Spec: FormatSpec(cfg, min, res.Violation)}
}
