package chaos

import (
	"bytes"
	"testing"
)

// TestTenantDeterministicTrace: same (cfg, seed) ⇒ byte-identical run log
// and identical outcome counters.
func TestTenantDeterministicTrace(t *testing.T) {
	cfg := TenantConfig{Tenants: 4, Cores: 2, Steps: 256}
	a := RunTenant(cfg, 7)
	b := RunTenant(cfg, 7)
	if !bytes.Equal(a.Trace, b.Trace) {
		t.Fatal("identical (cfg, seed) produced different traces")
	}
	if a.Accepted != b.Accepted || a.Delivered != b.Delivered || a.Renegs != b.Renegs {
		t.Fatalf("outcomes differ: %+v vs %+v", a, b)
	}
	c := RunTenant(cfg, 8)
	if bytes.Equal(a.Trace, c.Trace) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestTenantIsolationSweep: the tenant-isolation oracle family must hold
// across a seed sweep, and the sweep must actually exercise renegotiations
// (otherwise it proves nothing about isolation).
func TestTenantIsolationSweep(t *testing.T) {
	cfg := TenantConfig{Tenants: 4, Cores: 2, Steps: 512}
	var renegs, fast, delivered, steals uint64
	for seed := uint64(1); seed <= 12; seed++ {
		res := RunTenant(cfg, seed)
		if res.Violation != nil {
			t.Fatalf("seed %d: %v\ntrace tail:\n%s", seed, res.Violation, tail(res.Trace, 30))
		}
		if res.Accepted != res.Delivered {
			t.Fatalf("seed %d: accepted %d != delivered %d after a clean run",
				seed, res.Accepted, res.Delivered)
		}
		renegs += res.Renegs
		fast += res.FastRenegs
		delivered += res.Delivered
		steals += res.Steals
	}
	if renegs == 0 {
		t.Error("sweep scripted no layout switchovers; isolation untested")
	}
	if fast == 0 {
		t.Error("sweep exercised no fast-path renegotiations")
	}
	if delivered == 0 {
		t.Error("sweep delivered nothing")
	}
	if steals == 0 {
		t.Error("sweep exercised no work stealing")
	}
}

// TestTenantManyTenants: a larger plane (16 tenants, 4 cores) stays clean.
func TestTenantManyTenants(t *testing.T) {
	res := RunTenant(TenantConfig{Tenants: 16, Cores: 4, Steps: 768}, 3)
	if res.Violation != nil {
		t.Fatalf("%v\ntrace tail:\n%s", res.Violation, tail(res.Trace, 30))
	}
	if res.Accepted != res.Delivered {
		t.Fatalf("accepted %d != delivered %d", res.Accepted, res.Delivered)
	}
}
