package chaos

import (
	"fmt"
	"strings"

	"opendesc/internal/diffverify"
	"opendesc/internal/fleet"
	"opendesc/internal/fleet/telemetry"
	"opendesc/internal/nic"
	"opendesc/internal/pkt"
	"opendesc/internal/vclock"
)

// FleetConfig describes one fleet-control-plane chaos scenario (S25): a
// heterogeneous fleet of self-describing hosts behind flaky control links,
// a controller running canary rollouts — alternating benign upgrades with
// deliberately tampered ones — while the scheduler interleaves traffic,
// polls, clock advances, link partitions/heals, and rollout steps. The
// oracle family: exactly-once in-order delivery on every host through
// every rollout and rollback; golden-metadata reads clean on every
// generation except a known-bad trial (where garbage on the canary IS the
// detection signal, and only there); hosts surviving controller partitions
// on their last-known-good layout; exact conservation after the final
// drain.
type FleetConfig struct {
	// Hosts is the fleet size, round-robin over the six bundled NICs
	// (default 6, max 64).
	Hosts int
	// RingEntries sizes each host's completion ring (default 128).
	RingEntries int
	// Steps is the schedule length (default 512).
	Steps int
	// LeaseNs is the trial lease in virtual nanoseconds (default 2^20,
	// small enough that partition events actually expire trials).
	LeaseNs uint64
	// BakeTarget is the per-canary bake depth before promotion (default 24).
	BakeTarget uint64
	// ForgedTelemetry arms host index 1 with a forged-clean telemetry
	// mutator: its reports hide garbage/order counters and anomaly evidence
	// (re-sealed with a valid digest, so only the controller's counter
	// cross-check can expose them). The telemetry oracle then requires the
	// controller to quarantine that host the moment its forgery actually
	// lies, and to never quarantine an honest one.
	ForgedTelemetry bool
	// MutatedDescription arms host index 2 with a rogue describe mutator: it
	// republishes its own description with an emitted semantic field widened
	// past the accessor domain, digest and capability claims recomputed so
	// the document is structurally self-consistent — only the S27
	// verification gate can reject it. The verified-gating oracle then
	// requires that host to be quarantined at bootstrap with a
	// "verification:" reason and to stay on its boot generation for the
	// whole run: no provision, no trial, no promotion ever reaches it.
	MutatedDescription bool
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Hosts <= 0 {
		c.Hosts = 6
	}
	if c.Hosts > 64 {
		c.Hosts = 64
	}
	if c.RingEntries <= 0 {
		c.RingEntries = 128
	}
	if c.Steps <= 0 {
		c.Steps = 512
	}
	if c.LeaseNs == 0 {
		c.LeaseNs = 1 << 20
	}
	if c.BakeTarget == 0 {
		c.BakeTarget = 24
	}
	return c
}

// fleetUpgrades alternates benign intent widenings with tampered
// description pushes, so every long schedule exercises both promotion and
// automatic rollback.
var fleetGoodIntents = [2][]string{
	{"rss", "pkt_len"},
	{"rss", "pkt_len", "flow_id"},
}

// FleetResult is the outcome of one fleet chaos run.
type FleetResult struct {
	Violation *Violation
	// Trace is the deterministic run log: same (cfg, seed) ⇒ identical.
	Trace  []byte
	Events int

	Accepted   uint64
	Delivered  uint64
	Rollouts   uint64
	Promotions uint64
	Rollbacks  uint64
	// LeaseReverts counts hosts that unilaterally degraded to
	// last-known-good after controller silence.
	LeaseReverts uint64
	// CacheHitRate is the controller compile-cache hit rate at the end.
	CacheHitRate float64
	// TelemetryReports / TelemetryRejects count sweep outcomes: reports
	// validated+cross-checked+absorbed vs rejected (forged or stale).
	TelemetryReports uint64
	TelemetryRejects uint64
}

// fleetRunner executes one fleet schedule.
type fleetRunner struct {
	cfg   FleetConfig
	clk   *vclock.Virtual
	ctrl  *fleet.Controller
	hosts []*fleet.Host
	links []*fleet.Link

	rollout  *fleet.Rollout
	upgradeN int
	// badGens marks generations installed by tampered upgrades: garbage
	// reads are legal (expected, even) on exactly these and fatal anywhere
	// else.
	badGens map[uint64]bool
	// lastGarbage tracks each host's garbage counter so the oracle can
	// attribute every increment to the generation that produced it.
	lastGarbage []map[uint64]uint64

	nextPkt int
	log     strings.Builder
	res     *FleetResult
	viol    *Violation
}

// RunFleet executes the fleet-control-plane chaos scenario for (cfg, seed).
// Fully deterministic: virtual clock, splitmix64 schedule, single-threaded
// interleaving.
func RunFleet(cfg FleetConfig, seed uint64) *FleetResult {
	cfg = cfg.withDefaults()
	r := &fleetRunner{cfg: cfg, clk: vclock.NewVirtual(1), res: &FleetResult{}}
	if err := r.setup(seed); err != nil {
		r.res.Violation = &Violation{Oracle: "setup", Detail: err.Error()}
		return r.res
	}
	rng := &rng{s: seed ^ 0x51c3a9b2e7d40f86}
	for step := 0; step < cfg.Steps; step++ {
		if r.viol != nil {
			break
		}
		r.exec(step, rng)
		r.checkOracles(step)
		r.res.Events++
	}
	if r.viol == nil {
		r.finish(cfg.Steps)
	}
	r.res.Violation = r.viol
	for _, h := range r.hosts {
		hl := h.Health()
		r.res.Accepted += hl.Accepted
		r.res.Delivered += hl.Delivered
		r.res.LeaseReverts += hl.LeaseReverts
	}
	st := r.ctrl.CacheStats()
	r.res.CacheHitRate = st.HitRate()
	r.res.Trace = []byte(r.log.String())
	return r.res
}

func (r *fleetRunner) setup(seed uint64) error {
	cfg := r.cfg
	r.ctrl = fleet.NewController(fleet.Options{
		Clock:      r.clk,
		Seed:       seed,
		LeaseNs:    cfg.LeaseNs,
		BakeTarget: cfg.BakeTarget,
	})
	models := nic.All()
	for i := 0; i < cfg.Hosts; i++ {
		m := models[i%len(models)]
		h, err := fleet.NewHost(fmt.Sprintf("%s-%d", m.Name, i), m, fleet.HostOptions{
			RingEntries: cfg.RingEntries,
			Clock:       r.clk,
		})
		if err != nil {
			return err
		}
		l := fleet.NewLink(r.clk, 500)
		r.ctrl.AddHost(h, l)
		r.hosts = append(r.hosts, h)
		r.links = append(r.links, l)
	}
	if cfg.MutatedDescription && len(r.hosts) > 2 {
		src, err := diffverify.WidenFirstSemantic(r.hosts[2].Model.Source, 96)
		if err != nil {
			return fmt.Errorf("mutated description: %v", err)
		}
		r.hosts[2].SetDescribeMutator(func(d *fleet.Description) {
			if rd, rerr := d.RewriteSource(src); rerr == nil {
				*d = *rd
			}
		})
	}
	if cfg.ForgedTelemetry && len(r.hosts) > 1 {
		// Clean-slate forgery: the report claims nothing was delivered and
		// nothing went wrong. It re-seals with a valid digest, so it lies
		// undetectably — until the controller's own Health observation says
		// the host has served traffic.
		r.hosts[1].SetTelemetryMutator(func(rep *telemetry.Report) {
			rep.Counters = telemetry.Counters{}
			rep.Anomalies, rep.Slowest, rep.Truncated = nil, nil, 0
		})
	}
	r.badGens = make(map[uint64]bool)
	r.lastGarbage = make([]map[uint64]uint64, cfg.Hosts)
	for i := range r.lastGarbage {
		r.lastGarbage[i] = make(map[uint64]uint64)
	}
	// Bootstrap with links up: discovery + provision are the precondition
	// the schedule then attacks.
	wantHealthy := cfg.Hosts
	if cfg.MutatedDescription && cfg.Hosts > 2 {
		wantHealthy--
	}
	rep := r.ctrl.Inventory()
	if rep.Healthy != wantHealthy {
		return fmt.Errorf("bootstrap inventory: %d/%d healthy, want %d", rep.Healthy, cfg.Hosts, wantHealthy)
	}
	if cfg.MutatedDescription && cfg.Hosts > 2 {
		found := false
		for _, q := range rep.Quarantined {
			if q.Host == r.hosts[2].Name {
				found = true
				if !strings.HasPrefix(q.Reason, "verification: ") {
					return fmt.Errorf("mutated host quarantined for %q, want a verification reason", q.Reason)
				}
			}
		}
		if !found {
			return fmt.Errorf("mutated-description host %s not quarantined at bootstrap", r.hosts[2].Name)
		}
	}
	if err := r.ctrl.Provision(); err != nil {
		return fmt.Errorf("bootstrap provision: %v", err)
	}
	fmt.Fprintf(&r.log, "boot: %d hosts provisioned, cache hit rate %.3f\n",
		cfg.Hosts, r.ctrl.CacheStats().HitRate())
	return nil
}

func (r *fleetRunner) exec(step int, rng *rng) {
	switch roll := rng.intn(100); {
	case roll < 45:
		r.rx(step, rng)
	case roll < 70:
		h := rng.intn(len(r.hosts))
		if n := r.hosts[h].Poll(); n > 0 {
			fmt.Fprintf(&r.log, "%4d poll h%d -> %d\n", step, h, n)
		}
	case roll < 80:
		ns := uint64(1 + rng.intn(1<<14))
		r.clk.Advance(ns)
		fmt.Fprintf(&r.log, "%4d advance %d\n", step, ns)
	case roll < 88:
		i := rng.intn(len(r.links))
		l := r.links[i]
		if l.Partitioned() {
			l.Heal()
			fmt.Fprintf(&r.log, "%4d heal link %d\n", step, i)
		} else {
			l.Partition()
			fmt.Fprintf(&r.log, "%4d partition link %d\n", step, i)
		}
	case roll < 93:
		r.telemetryEvent(step)
	default:
		r.rolloutEvent(step)
	}
}

// telemetryEvent sweeps the fleet for telemetry reports and runs the
// telemetry oracle: an honest host is never quarantined by the sweep, and
// a forged-clean report is rejected the moment it actually hides evidence.
func (r *fleetRunner) telemetryEvent(step int) {
	sw := r.ctrl.CollectTelemetry()
	r.res.TelemetryReports += uint64(sw.Collected)
	r.res.TelemetryRejects += uint64(sw.Rejected)
	fmt.Fprintf(&r.log, "%4d telemetry sweep: %d collected %d skipped %d rejected, fleet p99 %d\n",
		step, sw.Collected, sw.Skipped, sw.Rejected, r.ctrl.Rollup().FleetP99())
	var forgedName string
	if r.cfg.ForgedTelemetry && len(r.hosts) > 1 {
		forgedName = r.hosts[1].Name
	}
	for _, o := range sw.Outcomes {
		if !o.Accepted && !o.Skipped && o.Host != forgedName {
			r.fail(&Violation{Oracle: "telemetry", Step: step,
				Detail: fmt.Sprintf("honest host %s quarantined by telemetry sweep: %s", o.Host, o.Reason)})
			return
		}
		if o.Accepted && o.Host == forgedName {
			hl := r.hosts[1].Health()
			if hl.Delivered > 0 || hl.Garbage > 0 || hl.OrderViolations > 0 {
				r.fail(&Violation{Oracle: "telemetry", Step: step,
					Detail: fmt.Sprintf("forged clean-slate report from %s absorbed despite %d delivered / %d garbage reads",
						o.Host, hl.Delivered, hl.Garbage)})
				return
			}
		}
	}
}

func (r *fleetRunner) rx(step int, rng *rng) {
	i := r.nextPkt
	r.nextPkt++
	h := rng.intn(len(r.hosts))
	pk := pkt.NewBuilder().
		WithIPv4([4]byte{10, byte(h), byte(i >> 8), byte(i)}, [4]byte{10, 0, 0, 1}).
		WithUDP(uint16(2000+i%251), uint16(53+i%7)).
		WithPayload(make([]byte, 4+i%119)).
		Build()
	if r.hosts[h].Rx(pk) {
		fmt.Fprintf(&r.log, "%4d rx h%d\n", step, h)
	} else {
		fmt.Fprintf(&r.log, "%4d rx h%d REJECT\n", step, h)
	}
}

// rolloutEvent advances the control plane: start an upgrade when idle
// (alternating benign and tampered), otherwise step the active rollout.
func (r *fleetRunner) rolloutEvent(step int) {
	if r.rollout == nil {
		bad := r.upgradeN%2 == 1
		up := fleet.Upgrade{Name: fmt.Sprintf("up%d", r.upgradeN)}
		if bad {
			up.Descriptions = map[string]string{}
			for _, m := range nic.All() {
				src, err := fleet.SwapSemantics(m.Source, "ip_checksum", "pkt_len")
				if err != nil {
					r.fail(&Violation{Oracle: "setup", Step: step, Detail: err.Error()})
					return
				}
				up.Descriptions[m.Name] = src
			}
		} else {
			up.Semantics = fleetGoodIntents[(r.upgradeN/2)%2]
		}
		ro, err := r.ctrl.StartRollout(up)
		if err != nil {
			// Start can legitimately fail only when a prior rollout is still
			// active (it is not) — anything else is a harness bug, but a
			// partitioned fleet can also leave zero healthy targets.
			fmt.Fprintf(&r.log, "%4d rollout start %q refused: %v\n", step, up.Name, err)
			return
		}
		r.rollout = ro
		if bad {
			r.badGens[ro.Gen()] = true
		}
		r.upgradeN++
		fmt.Fprintf(&r.log, "%4d rollout start %q gen %d bad=%t\n", step, up.Name, ro.Gen(), bad)
		return
	}
	wasBad := r.badGens[r.rollout.Gen()]
	err := r.rollout.Step()
	phase := r.ctrl.Phase()
	fmt.Fprintf(&r.log, "%4d rollout step -> %s (err=%v)\n", step, phase, err)
	switch phase {
	case fleet.PhasePromoted:
		if wasBad {
			r.fail(&Violation{Oracle: "canary", Step: step,
				Detail: fmt.Sprintf("tampered upgrade gen %d promoted fleet-wide", r.rollout.Gen())})
			return
		}
		r.res.Promotions++
		r.rollout = nil
	case fleet.PhaseRolledBack:
		r.res.Rollbacks++
		r.rollout = nil
	}
}

// feed pushes one deterministic packet into every host (finish-phase bake
// traffic, when the random schedule is over).
func (r *fleetRunner) feed() {
	for h := range r.hosts {
		i := r.nextPkt
		r.nextPkt++
		pk := pkt.NewBuilder().
			WithIPv4([4]byte{10, byte(h), byte(i >> 8), byte(i)}, [4]byte{10, 0, 0, 1}).
			WithUDP(uint16(2000+i%251), 53).
			WithPayload(make([]byte, 4+i%119)).
			Build()
		r.hosts[h].Rx(pk)
	}
}

// checkOracles runs the continuous invariants after every step: no order
// violations anywhere, and garbage-read increments attributable only to
// known-bad trial generations.
func (r *fleetRunner) checkOracles(step int) {
	if r.viol != nil {
		return
	}
	if r.cfg.MutatedDescription && len(r.hosts) > 2 {
		// Verified-gating oracle: the quarantined host never advances past
		// its boot generation — no provision, trial, or promotion reached it.
		h := r.hosts[2]
		if g, cg := h.Generation(), h.CommittedGeneration(); g != 0 || cg != 0 {
			r.fail(&Violation{Oracle: "verified-gating", Step: step, Queue: 2,
				Detail: fmt.Sprintf("unverified host %s advanced to gen %d (committed %d); the certificate gate leaked", h.Name, g, cg)})
			return
		}
	}
	for i, h := range r.hosts {
		hl := h.Health()
		if hl.OrderViolations != 0 {
			r.fail(&Violation{Oracle: "exactly-once", Step: step, Queue: i, Detail: hl.Detail})
			return
		}
		for gen, n := range h.GarbageByGen() {
			if n > r.lastGarbage[i][gen] && !r.badGens[gen] {
				r.fail(&Violation{Oracle: "golden-metadata", Step: step, Queue: i,
					Detail: fmt.Sprintf("host %s read garbage on gen %d (not a tampered generation): %s",
						h.Name, gen, hl.Detail)})
				return
			}
			r.lastGarbage[i][gen] = n
		}
	}
}

// finish heals every link, resolves any in-flight rollout, drains every
// host, and checks conservation: every accepted packet delivered exactly
// once, no expectation left behind, cache counters reconciled.
func (r *fleetRunner) finish(step int) {
	for _, l := range r.links {
		l.Heal()
	}
	// Let any expired trial lease fire before the controller reconnects.
	r.clk.Advance(r.cfg.LeaseNs + 1)
	if r.rollout != nil {
		for i := 0; r.viol == nil && r.rollout != nil && i < 1024; i++ {
			wasBad := r.badGens[r.rollout.Gen()]
			r.rollout.Step()
			switch r.ctrl.Phase() {
			case fleet.PhasePromoted:
				if wasBad {
					r.fail(&Violation{Oracle: "canary", Step: step,
						Detail: fmt.Sprintf("tampered upgrade gen %d promoted at finish", r.rollout.Gen())})
					return
				}
				r.res.Promotions++
				r.rollout = nil
			case fleet.PhaseRolledBack:
				r.res.Rollbacks++
				r.rollout = nil
			default:
				// Mid-bake: canaries need traffic to accumulate deliveries.
				r.feed()
				for h := range r.hosts {
					r.hosts[h].Poll()
				}
			}
		}
		if r.rollout != nil {
			r.fail(&Violation{Oracle: "liveness", Step: step,
				Detail: fmt.Sprintf("rollout stuck in phase %s after links healed", r.ctrl.Phase())})
			return
		}
	}
	for drained := true; drained && r.viol == nil; {
		drained = false
		for _, h := range r.hosts {
			if h.Poll() > 0 {
				drained = true
			}
		}
	}
	r.checkOracles(step)
	if r.viol != nil {
		return
	}
	for i, h := range r.hosts {
		hl := h.Health()
		if hl.Accepted != hl.Delivered || h.PendingCount() != 0 {
			r.fail(&Violation{Oracle: "conservation", Step: step, Queue: i,
				Detail: fmt.Sprintf("host %s: accepted %d, delivered %d, pending %d",
					h.Name, hl.Accepted, hl.Delivered, h.PendingCount())})
			return
		}
	}
	st := r.ctrl.CacheStats()
	if st.Hits+st.Misses+st.Coalesced != st.Gets {
		r.fail(&Violation{Oracle: "cache-counters", Step: step,
			Detail: fmt.Sprintf("gets %d != hits %d + misses %d + coalesced %d",
				st.Gets, st.Hits, st.Misses, st.Coalesced)})
		return
	}
	r.res.Rollouts = uint64(r.upgradeN)
}

func (r *fleetRunner) fail(v *Violation) {
	if r.viol == nil {
		r.viol = v
		fmt.Fprintf(&r.log, "VIOLATION %s h%d: %s\n", v.Oracle, v.Queue, v.Detail)
	}
}
