package chaos

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wallClockFuncs are the time-package calls that read or wait on the real
// clock. Any of these on a hot path breaks chaos determinism.
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "Since": true, "Until": true,
	"NewTimer": true, "NewTicker": true, "Tick": true, "AfterFunc": true,
}

// wallClockAllowed lists the package directories that may read the wall
// clock: measurement and exposition layers (obs, bench, softnic's calibration
// loop), the clock abstraction itself, and the CLIs. Everything else must go
// through an injected vclock.Clock.
var wallClockAllowed = []string{
	"internal/obs",
	"internal/bench",
	"internal/softnic",
	"internal/vclock",
	"cmd/",
}

// TestNoWallClockOnHotPaths is a lint-style guard: it fails if any
// non-test file outside the allowlist calls time.Now / time.Sleep / etc.
// directly. Hot-path packages (the driver, evolve, nicsim, faults, ring,
// chaos itself) must take time from an injected vclock.Clock so a chaos run
// is a pure function of (seed, config).
func TestNoWallClockOnHotPaths(t *testing.T) {
	root, err := repoRoot()
	if err != nil {
		t.Fatalf("locating repo root: %v", err)
	}
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, _ := filepath.Rel(root, path)
		rel = filepath.ToSlash(rel)
		for _, prefix := range wallClockAllowed {
			if strings.HasPrefix(rel, prefix) {
				return nil
			}
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		// Only flag files that import the real "time" package (a local
		// package named time would be somebody else's problem).
		importsTime := false
		for _, imp := range f.Imports {
			if imp.Path.Value == `"time"` && imp.Name == nil {
				importsTime = true
			}
		}
		if !importsTime {
			return nil
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != "time" || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			pos := fset.Position(sel.Pos())
			t.Errorf("%s:%d: direct time.%s on a hot path — take an injected vclock.Clock instead (see internal/vclock)",
				rel, pos.Line, sel.Sel.Name)
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatalf("walking repo: %v", err)
	}
}

// repoRoot walks up from the package directory to the directory holding
// go.mod.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
