package chaos

import (
	"fmt"
	"strings"

	"opendesc/internal/evolve"
	"opendesc/internal/pkt"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/tenant"
	"opendesc/internal/vclock"
	"opendesc/internal/workload"
)

// TenantConfig describes one multi-tenant serving-plane chaos scenario
// (S23): N tenants share one RSS-sharded plane while the scheduler
// interleaves Zipf arrivals, per-core polls (including steals), clock
// advances, and per-tenant renegotiations. The tenant-isolation oracle
// family checks that one tenant's hot-swap never loses, reorders, or
// corrupts a neighbor's traffic.
type TenantConfig struct {
	// NIC is the bundled model (default "mlx5" — the only bundled model
	// with enough alternative completion formats for renegotiations to
	// move the joint layout).
	NIC string
	// Tenants is the tenant count (default 4, max 64).
	Tenants int
	// Cores is the RSS shard / poll-loop count (default 2, max 8).
	Cores int
	// RingEntries sizes each queue's completion ring (default 64).
	RingEntries int
	// Steps is the schedule length (default 512).
	Steps int
	// Skew is the Zipf exponent of the arrival trace (default 1.1).
	Skew float64
}

func (c TenantConfig) withDefaults() TenantConfig {
	if c.NIC == "" {
		c.NIC = "mlx5"
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Tenants > 64 {
		c.Tenants = 64
	}
	if c.Cores <= 0 {
		c.Cores = 2
	}
	if c.Cores > 8 {
		c.Cores = 8
	}
	if c.RingEntries <= 0 {
		c.RingEntries = 64
	}
	if c.Steps <= 0 {
		c.Steps = 512
	}
	if c.Skew == 0 {
		c.Skew = 1.1
	}
	return c
}

// tenantPhases is the pair of intents each tenant renegotiates between.
// Every semantic has a SoftNIC ground-truth function, so the golden oracle
// can check any read in any phase; the sets differ enough that a flip can
// move the joint optimum (forcing full drain/apply switchovers) or keep it
// (exercising the accessor-only fast path), depending on the neighbors.
var tenantPhases = [2][]string{
	{"rss", "pkt_len"},
	{"flow_id", "pkt_len", "tunnel_id"},
}

// TenantResult is the outcome of one tenant-plane chaos run.
type TenantResult struct {
	// Violation is nil when every oracle held through the schedule plus the
	// final drain.
	Violation *Violation
	// Trace is the deterministic run log: same (cfg, seed) ⇒ identical.
	Trace []byte
	// Events counts executed schedule steps.
	Events int

	Accepted  uint64
	Delivered uint64
	Rejected  uint64
	// Renegs / FastRenegs split completed renegotiations into layout
	// switchovers and accessor-only swaps.
	Renegs     uint64
	FastRenegs uint64
	Steals     uint64
}

// tenantExpect is one accepted packet in a queue's FIFO expectation: the
// exactly-once oracle matches deliveries against it by slice identity.
type tenantExpect struct {
	pkt    []byte
	tenant int
}

// tenantRunner executes one tenant-plane schedule.
type tenantRunner struct {
	cfg    TenantConfig
	plane  *tenant.Plane
	clk    *vclock.Virtual
	trace  *workload.ZipfTrace
	golden map[semantics.Name]func(*pkt.Info, []byte) uint64

	fifo      [][]tenantExpect // per queue, arrival order
	accepted  []uint64         // per tenant
	delivered []uint64         // per tenant
	phase     []int            // per tenant: which tenantPhases entry is live
	nextPkt   int

	log  strings.Builder
	res  *TenantResult
	viol *Violation
}

// RunTenant executes the tenant-isolation chaos scenario for (cfg, seed).
// Deterministic: the plane runs on a virtual clock, the schedule and the
// Zipf trace come from splitmix64 streams, and all polling is
// single-threaded (concurrency is modeled by interleaving poll events
// across cores, the same discipline the harden/evolve runner uses for
// queues).
func RunTenant(cfg TenantConfig, seed uint64) *TenantResult {
	cfg = cfg.withDefaults()
	r := &tenantRunner{cfg: cfg, clk: vclock.NewVirtual(1), res: &TenantResult{}}
	if err := r.setup(seed); err != nil {
		r.res.Violation = &Violation{Oracle: "setup", Detail: err.Error()}
		return r.res
	}
	rng := &rng{s: seed ^ 0x7e3a9d4b5c216f08}
	for step := 0; step < cfg.Steps; step++ {
		if r.viol != nil {
			break
		}
		r.exec(step, rng)
		r.res.Events++
	}
	if r.viol == nil {
		r.finalDrain(cfg.Steps)
	}
	r.res.Violation = r.viol
	st := r.plane.Stats()
	r.res.Renegs = st.Renegs
	r.res.FastRenegs = st.FastRenegs
	r.res.Steals = st.Steals
	for t := range r.accepted {
		r.res.Accepted += r.accepted[t]
		r.res.Delivered += r.delivered[t]
	}
	r.res.Trace = []byte(r.log.String())
	return r.res
}

func (r *tenantRunner) setup(seed uint64) error {
	cfg := r.cfg
	specs := make([]tenant.Spec, cfg.Tenants)
	r.phase = make([]int, cfg.Tenants)
	for i := range specs {
		specs[i] = tenant.Spec{
			Name:      fmt.Sprintf("t%d", i),
			Semantics: tenantPhases[0],
		}
	}
	p, err := tenant.Open(tenant.Options{
		NIC:         cfg.NIC,
		Cores:       cfg.Cores,
		RingEntries: cfg.RingEntries,
		Clock:       r.clk,
		Policy:      evolve.JointPolicy{Interval: 1 << 30}, // scripted renegs only
	}, specs...)
	if err != nil {
		return err
	}
	r.plane = p
	r.trace, err = workload.GenerateZipf(workload.ZipfSpec{
		Packets: cfg.Steps,
		Flows:   1 << 16,
		Skew:    cfg.Skew,
		Tenants: cfg.Tenants,
		Seed:    seed,
	})
	if err != nil {
		return err
	}
	r.fifo = make([][]tenantExpect, cfg.Cores)
	r.accepted = make([]uint64, cfg.Tenants)
	r.delivered = make([]uint64, cfg.Tenants)

	// Ground truth for every semantic either phase can read. pkt_len is the
	// wire length; the rest are pure functions of the decoded packet.
	funcs := softnic.Funcs()
	r.golden = map[semantics.Name]func(*pkt.Info, []byte) uint64{
		semantics.PktLen: func(_ *pkt.Info, p []byte) uint64 { return uint64(len(p)) },
	}
	for _, s := range []semantics.Name{semantics.RSS, semantics.FlowID, semantics.TunnelID} {
		f := funcs[s]
		r.golden[s] = func(_ *pkt.Info, p []byte) uint64 { return f(p) }
	}
	return nil
}

// exec runs one schedule step. Event kinds are drawn inline (the tenant
// scenario does not share the harden/evolve Event grammar: its reneg events
// have no fault-class analogue).
func (r *tenantRunner) exec(step int, rng *rng) {
	switch roll := rng.intn(100); {
	case roll < 50:
		r.rx(step)
	case roll < 80:
		core := rng.intn(r.cfg.Cores)
		r.poll(step, core)
	case roll < 90:
		ns := uint64(1+rng.intn(4096)) * 256
		r.clk.Advance(ns)
		fmt.Fprintf(&r.log, "%4d advance %d\n", step, ns)
	default:
		t := rng.intn(r.cfg.Tenants)
		r.reneg(step, t)
	}
}

func (r *tenantRunner) rx(step int) {
	pk := r.trace.Packets[r.nextPkt%len(r.trace.Packets)]
	ti := r.trace.TenantOf[r.nextPkt%len(r.trace.Packets)]
	r.nextPkt++
	var in pkt.Info
	if err := pkt.Decode(pk, &in); err != nil {
		r.fail(&Violation{Oracle: "setup", Step: step, Detail: "undecodable trace packet: " + err.Error()})
		return
	}
	q := r.plane.Steer(&in)
	if r.plane.Rx(pk) {
		r.fifo[q] = append(r.fifo[q], tenantExpect{pkt: pk, tenant: ti})
		r.accepted[ti]++
		fmt.Fprintf(&r.log, "%4d rx t%d q%d\n", step, ti, q)
	} else {
		r.res.Rejected++
		fmt.Fprintf(&r.log, "%4d rx t%d q%d REJECT\n", step, ti, q)
	}
}

// poll drains one core and checks every delivery against the per-queue FIFO
// (exactly-once, in order, right tenant — by slice identity) and the golden
// metadata model (zero garbage reads in any generation).
func (r *tenantRunner) poll(step, core int) {
	n := r.plane.PollCore(core, func(d tenant.Delivery) {
		if r.viol != nil {
			return
		}
		q := d.Queue
		if len(r.fifo[q]) == 0 {
			r.fail(&Violation{Oracle: "exactly-once", Step: step, Queue: q,
				Detail: "delivery from a queue with no packets outstanding"})
			return
		}
		want := r.fifo[q][0]
		r.fifo[q] = r.fifo[q][1:]
		if &want.pkt[0] != &d.Pkt[0] {
			r.fail(&Violation{Oracle: "exactly-once", Step: step, Queue: q,
				Detail: "delivery out of order (packet identity mismatch)"})
			return
		}
		if want.tenant != d.Tenant {
			r.fail(&Violation{Oracle: "tenant-isolation", Step: step, Queue: q,
				Detail: fmt.Sprintf("packet for tenant %d delivered to tenant %d", want.tenant, d.Tenant)})
			return
		}
		var in pkt.Info
		if err := pkt.Decode(d.Pkt, &in); err != nil {
			r.fail(&Violation{Oracle: "golden-metadata", Step: step, Queue: q,
				Detail: "delivered packet undecodable: " + err.Error()})
			return
		}
		// Any semantic that resolves must carry its ground-truth value,
		// whichever generation's layout it was DMAed under. (Resolution
		// itself is intent-scoped and may legitimately change across a
		// renegotiation; garbage values may not.)
		for s, golden := range r.golden {
			got, ok := d.Get(string(s))
			if !ok {
				continue
			}
			want := golden(&in, d.Pkt)
			// A hardware field narrower than the semantic's natural width
			// truncates (mlx5's 24-bit flow_tag vs the 32-bit software
			// FlowID): compare under the accessor's width.
			if w := d.Width(string(s)); d.Hardware(string(s)) && w > 0 && w < 64 {
				want &= (1 << w) - 1
			}
			if got != want {
				r.fail(&Violation{Oracle: "golden-metadata", Step: step, Queue: q,
					Detail: fmt.Sprintf("tenant %d read %s = %#x, ground truth %#x", d.Tenant, s, got, want)})
				return
			}
		}
		r.delivered[d.Tenant]++
	})
	if n > 0 {
		fmt.Fprintf(&r.log, "%4d poll c%d -> %d\n", step, core, n)
	}
}

// reneg flips one tenant's intent phase and checks the isolation oracle
// around the switchover: the renegotiation itself must deliver nothing,
// drop nothing (pending is conserved), and leave every per-queue FIFO
// expectation intact — neighbors cannot even observe that it happened
// until their next read resolves against the new joint layout.
func (r *tenantRunner) reneg(step, t int) {
	pendingBefore := r.plane.Pending()
	deliveredBefore := make([]uint64, len(r.delivered))
	copy(deliveredBefore, r.delivered)

	next := 1 - r.phase[t]
	err := r.plane.Renegotiate(fmt.Sprintf("t%d", t), tenantPhases[next]...)
	if err != nil {
		r.fail(&Violation{Oracle: "reneg", Step: step,
			Detail: fmt.Sprintf("tenant %d: %v", t, err)})
		return
	}
	r.phase[t] = next

	if got := r.plane.Pending(); got != pendingBefore {
		r.fail(&Violation{Oracle: "tenant-isolation", Step: step,
			Detail: fmt.Sprintf("renegotiation changed pending %d -> %d (in-flight traffic lost or invented)",
				pendingBefore, got)})
		return
	}
	for i := range r.delivered {
		if r.delivered[i] != deliveredBefore[i] {
			r.fail(&Violation{Oracle: "tenant-isolation", Step: step,
				Detail: fmt.Sprintf("renegotiation of tenant %d delivered traffic for tenant %d", t, i)})
			return
		}
	}
	fmt.Fprintf(&r.log, "%4d reneg t%d phase%d gen%d\n", step, t, next, r.plane.Generation())
}

// finalDrain polls everything out and checks conservation: every accepted
// packet was delivered exactly once to its own tenant, across however many
// renegotiations the schedule scripted.
func (r *tenantRunner) finalDrain(step int) {
	for r.viol == nil {
		n := 0
		for c := 0; c < r.cfg.Cores; c++ {
			before := r.totalDelivered()
			r.poll(step, c)
			n += int(r.totalDelivered() - before)
		}
		if n == 0 {
			break
		}
	}
	if r.viol != nil {
		return
	}
	for t := range r.accepted {
		if r.accepted[t] != r.delivered[t] {
			r.fail(&Violation{Oracle: "conservation", Step: step,
				Detail: fmt.Sprintf("tenant %d: accepted %d, delivered %d", t, r.accepted[t], r.delivered[t])})
			return
		}
	}
	for q := range r.fifo {
		if len(r.fifo[q]) != 0 {
			r.fail(&Violation{Oracle: "conservation", Step: step, Queue: q,
				Detail: fmt.Sprintf("%d packets still expected after the final drain", len(r.fifo[q]))})
			return
		}
	}
}

func (r *tenantRunner) totalDelivered() uint64 {
	var n uint64
	for _, d := range r.delivered {
		n += d
	}
	return n
}

func (r *tenantRunner) fail(v *Violation) {
	if r.viol == nil {
		r.viol = v
		fmt.Fprintf(&r.log, "VIOLATION %s q%d: %s\n", v.Oracle, v.Queue, v.Detail)
	}
}
