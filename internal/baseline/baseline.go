// Package baseline re-implements the metadata-handling strategies of the
// host stacks the paper contrasts OpenDesc against (§2):
//
//   - SkBuff: Linux-style eager full extraction — every descriptor field is
//     copied into a large per-packet metadata structure whether the
//     application reads it or not;
//   - Mbuf: DPDK-style extraction into a fixed rte_mbuf area plus a
//     flag-guarded dynamic-field indirection layer for offloads that no
//     longer fit (the rte_mbuf_dyn mechanism the paper calls "a performance
//     bottleneck");
//   - XDP: the narrow xdp_buff model — pointer + length, with exactly three
//     driver-defined kfunc accessors (hash, timestamp, VLAN); everything
//     else must be recomputed in software;
//   - OpenDesc (package codegen): direct fixed-offset reads generated from
//     the declarative description, no intermediate copy.
//
// All baselines consume the same simulated completion records, so measured
// differences are purely metadata-handling overhead.
package baseline

import (
	"opendesc/internal/bitfield"
	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/semantics"
)

// SkBuff mirrors the metadata-bearing portion of a Linux sk_buff: a wide
// per-packet structure the driver populates eagerly from the descriptor.
type SkBuff struct {
	Len        uint32
	DataLen    uint32
	Hash       uint32
	HashType   uint8
	CsumLevel  uint8
	CsumStatus uint16
	VlanTCI    uint16
	VlanProto  uint16
	Timestamp  uint64
	Mark       uint32
	QueueID    uint16
	PType      uint8
	IPID       uint16
	FlowID     uint32
	TunnelID   uint32
	LROSegs    uint8
	ErrFlags   uint8
	// cb mirrors the 48-byte control block Linux memsets per packet.
	CB [48]byte
	// Fields below model the pointer bookkeeping the kernel fills.
	HeadOff, DataOff, TailOff uint32
}

// SkBuffDriver extracts every descriptor field into an SkBuff, like a kernel
// driver's rx handler. layout is the completion path the NIC is configured
// for.
type SkBuffDriver struct {
	fields []core.LayoutField
}

// NewSkBuffDriver builds the eager-extraction driver for a layout.
func NewSkBuffDriver(p *core.Path) *SkBuffDriver {
	var fs []core.LayoutField
	for _, f := range p.Fields {
		if f.Semantic != "" && f.WidthBits <= 64 {
			fs = append(fs, f)
		}
	}
	return &SkBuffDriver{fields: fs}
}

// Fill populates skb from a completion record, copying every available
// field — the "heavyweight abstraction" cost.
func (d *SkBuffDriver) Fill(skb *SkBuff, cmpt []byte, pktLen int) {
	// Kernel behaviour: zero the control block and bookkeeping every packet.
	skb.CB = [48]byte{}
	skb.Len = uint32(pktLen)
	skb.DataLen = uint32(pktLen)
	skb.HeadOff, skb.DataOff, skb.TailOff = 0, 0, uint32(pktLen)
	for _, f := range d.fields {
		v := bitfield.Read(cmpt, f.OffsetBits, f.WidthBits)
		switch f.Semantic {
		case semantics.RSS:
			skb.Hash = uint32(v)
			skb.HashType = 1
		case semantics.IPChecksum, semantics.L4Checksum:
			skb.CsumStatus = uint16(v)
			skb.CsumLevel++
		case semantics.VLAN:
			skb.VlanTCI = uint16(v)
			skb.VlanProto = 0x8100
		case semantics.Timestamp:
			skb.Timestamp = v
		case semantics.Mark:
			skb.Mark = uint32(v)
		case semantics.QueueID:
			skb.QueueID = uint16(v)
		case semantics.PType:
			skb.PType = uint8(v)
		case semantics.IPID:
			skb.IPID = uint16(v)
		case semantics.FlowID:
			skb.FlowID = uint32(v)
		case semantics.TunnelID:
			skb.TunnelID = uint32(v)
		case semantics.LROSegs:
			skb.LROSegs = uint8(v)
		case semantics.ErrorFlags:
			skb.ErrFlags = uint8(v)
		case semantics.PktLen:
			skb.Len = uint32(v)
		default:
			// Unknown offloads cannot be represented: the sk_buff model
			// drops them (the ossification the paper describes).
		}
	}
}

// Read returns a semantic from the filled SkBuff.
func (skb *SkBuff) Read(s semantics.Name) (uint64, bool) {
	switch s {
	case semantics.RSS:
		return uint64(skb.Hash), skb.HashType != 0
	case semantics.VLAN:
		return uint64(skb.VlanTCI), skb.VlanProto != 0
	case semantics.Timestamp:
		return skb.Timestamp, true
	case semantics.Mark:
		return uint64(skb.Mark), true
	case semantics.QueueID:
		return uint64(skb.QueueID), true
	case semantics.PType:
		return uint64(skb.PType), true
	case semantics.IPID:
		return uint64(skb.IPID), true
	case semantics.FlowID:
		return uint64(skb.FlowID), true
	case semantics.TunnelID:
		return uint64(skb.TunnelID), true
	case semantics.LROSegs:
		return uint64(skb.LROSegs), true
	case semantics.ErrorFlags:
		return uint64(skb.ErrFlags), true
	case semantics.PktLen:
		return uint64(skb.Len), true
	case semantics.IPChecksum, semantics.L4Checksum:
		return uint64(skb.CsumStatus), skb.CsumLevel > 0
	}
	return 0, false
}

// Mbuf mirrors DPDK's rte_mbuf: a fixed first-cacheline area for the common
// offloads plus a dynamic-field array reached through per-offload registered
// offsets (rte_mbuf_dyn).
type Mbuf struct {
	PktLen  uint32
	DataLen uint32
	OlFlags uint64
	Hash    uint32
	VlanTCI uint16
	PType   uint32
	// Dynfield is the 9x8-byte dynamic area of rte_mbuf.
	Dynfield [9]uint64
}

// Offload flag bits, mirroring RTE_MBUF_F_RX_*.
const (
	FlagRSS uint64 = 1 << iota
	FlagVLAN
	FlagIPCsum
	FlagL4Csum
	FlagTimestamp
	FlagFlowID
	FlagTunnel
	FlagMark
	FlagLRO
	FlagErr
)

// mbufSlot classifies where a semantic lands inside the mbuf.
type mbufSlot int8

const (
	slotStatic  mbufSlot = -1 // first-cacheline member
	slotDropped mbufSlot = -2 // no dynfield space left
)

// mbufFillOp is one precompiled extraction step: DPDK drivers compile this
// fixed sequence into their RX burst function, so the per-packet cost is the
// copy plus the flag update — not a table lookup.
type mbufFillOp struct {
	off, width int
	sem        semantics.Name
	slot       mbufSlot // slotStatic, slotDropped, or dynfield index ≥ 0
	flag       uint64
}

// MbufDriver extracts descriptor fields into the mbuf. Common fields go to
// the static area; everything else goes through the registered dynfield
// table (one indirection per offload, guarded by a flag test — the paper's
// "indirection layer that copies metadata based on numerous configuration
// flags").
type MbufDriver struct {
	ops []mbufFillOp
	// dynIndex records each semantic's registered slot so applications can
	// resolve it once (rte_mbuf_dynfield_offset) via Accessor.
	dynIndex map[semantics.Name]mbufSlot
}

// NewMbufDriver registers dynfields for every non-static semantic in the
// layout and precompiles the extraction sequence. enabled restricts which
// offloads are extracted (nil = all in the layout).
func NewMbufDriver(p *core.Path, enabled []semantics.Name) *MbufDriver {
	d := &MbufDriver{dynIndex: make(map[semantics.Name]mbufSlot)}
	on := make(map[semantics.Name]bool)
	if enabled == nil {
		for _, f := range p.Fields {
			if f.Semantic != "" {
				on[f.Semantic] = true
			}
		}
	} else {
		for _, s := range enabled {
			on[s] = true
		}
	}
	next := mbufSlot(0)
	for _, f := range p.Fields {
		if f.Semantic == "" || f.WidthBits > 64 {
			continue
		}
		var slot mbufSlot
		switch f.Semantic {
		case semantics.RSS, semantics.VLAN, semantics.PType, semantics.PktLen:
			slot = slotStatic
		default:
			if int(next) < len(Mbuf{}.Dynfield) {
				slot = next
				next++
			} else {
				slot = slotDropped // the rte_mbuf growth problem
			}
		}
		d.dynIndex[f.Semantic] = slot
		if on[f.Semantic] && slot != slotDropped {
			d.ops = append(d.ops, mbufFillOp{
				off: f.OffsetBits, width: f.WidthBits,
				sem: f.Semantic, slot: slot, flag: flagFor(f.Semantic),
			})
		}
	}
	return d
}

// flagFor maps semantics to their offload flag bit.
func flagFor(s semantics.Name) uint64 {
	switch s {
	case semantics.RSS:
		return FlagRSS
	case semantics.VLAN:
		return FlagVLAN
	case semantics.IPChecksum:
		return FlagIPCsum
	case semantics.L4Checksum:
		return FlagL4Csum
	case semantics.Timestamp:
		return FlagTimestamp
	case semantics.FlowID:
		return FlagFlowID
	case semantics.TunnelID:
		return FlagTunnel
	case semantics.Mark:
		return FlagMark
	case semantics.LROSegs:
		return FlagLRO
	case semantics.ErrorFlags:
		return FlagErr
	}
	return 0
}

// Fill extracts the enabled offloads from the completion into the mbuf,
// running the precompiled op sequence.
func (d *MbufDriver) Fill(mb *Mbuf, cmpt []byte, pktLen int) {
	mb.OlFlags = 0
	mb.PktLen = uint32(pktLen)
	mb.DataLen = uint32(pktLen)
	for i := range d.ops {
		op := &d.ops[i]
		v := bitfield.Read(cmpt, op.off, op.width)
		if op.slot >= 0 {
			mb.Dynfield[op.slot] = v
			mb.OlFlags |= op.flag
			continue
		}
		switch op.sem {
		case semantics.RSS:
			mb.Hash = uint32(v)
			mb.OlFlags |= FlagRSS
		case semantics.VLAN:
			mb.VlanTCI = uint16(v)
			mb.OlFlags |= FlagVLAN
		case semantics.PType:
			mb.PType = uint32(v)
		case semantics.PktLen:
			mb.PktLen = uint32(v)
		}
	}
}

// MbufAccessor is a resolved read handle, the analogue of an application
// caching rte_mbuf_dynfield_offset() once at startup. Reads still pay the
// flag test plus the dynfield indirection.
type MbufAccessor struct {
	sem  semantics.Name
	slot mbufSlot
	flag uint64
	ok   bool
}

// Accessor resolves the read handle for a semantic.
func (d *MbufDriver) Accessor(s semantics.Name) MbufAccessor {
	slot, ok := d.dynIndex[s]
	return MbufAccessor{sem: s, slot: slot, flag: flagFor(s), ok: ok && slot != slotDropped}
}

// Read returns the semantic from a filled mbuf.
func (a MbufAccessor) Read(mb *Mbuf) (uint64, bool) {
	if !a.ok {
		return 0, false
	}
	if a.slot >= 0 {
		if a.flag != 0 && mb.OlFlags&a.flag == 0 {
			return 0, false
		}
		return mb.Dynfield[a.slot], true
	}
	switch a.sem {
	case semantics.RSS:
		if mb.OlFlags&FlagRSS == 0 {
			return 0, false
		}
		return uint64(mb.Hash), true
	case semantics.VLAN:
		if mb.OlFlags&FlagVLAN == 0 {
			return 0, false
		}
		return uint64(mb.VlanTCI), true
	case semantics.PType:
		return uint64(mb.PType), true
	case semantics.PktLen:
		return uint64(mb.PktLen), true
	}
	return 0, false
}

// Read resolves and reads in one call; hot paths should cache an Accessor.
func (d *MbufDriver) Read(mb *Mbuf, s semantics.Name) (uint64, bool) {
	return d.Accessor(s).Read(mb)
}

// XDPMeta is the xdp_buff view: data pointer + length, with the three
// metadata kfuncs drivers implement today (rx_hash, rx_timestamp, rx_vlan).
type XDPMeta struct {
	driver *XDPDriver
	cmpt   []byte
	Len    int
}

// XDPDriver provides the per-driver kfunc implementations for the layout the
// NIC is configured with. A kfunc exists only when the layout carries the
// corresponding field — and only for the three semantics XDP standardizes.
type XDPDriver struct {
	hash, ts, vlan *core.LayoutField
	soft           map[semantics.Name]codegen.SoftFunc
}

// XDPCoveredSemantics are the metadata hints XDP standardizes at the time of
// writing ("XDP, therefore, proposes 3 accessors").
var XDPCoveredSemantics = []semantics.Name{semantics.RSS, semantics.Timestamp, semantics.VLAN}

// NewXDPDriver builds the 3-kfunc driver over a layout; soft supplies the
// software fallbacks used when the field is absent or the semantic is not
// covered by XDP at all.
func NewXDPDriver(p *core.Path, soft map[semantics.Name]codegen.SoftFunc) *XDPDriver {
	return &XDPDriver{
		hash: p.Field(semantics.RSS),
		ts:   p.Field(semantics.Timestamp),
		vlan: p.Field(semantics.VLAN),
		soft: soft,
	}
}

// Wrap builds the xdp_buff view for one completion (no copies).
func (d *XDPDriver) Wrap(cmpt []byte, pktLen int) XDPMeta {
	return XDPMeta{driver: d, cmpt: cmpt, Len: pktLen}
}

// Read returns a semantic: via kfunc when covered and present, via software
// recomputation otherwise (false return means not obtainable at all).
func (m XDPMeta) Read(s semantics.Name, packet []byte) (uint64, bool) {
	var f *core.LayoutField
	switch s {
	case semantics.RSS:
		f = m.driver.hash
	case semantics.Timestamp:
		f = m.driver.ts
	case semantics.VLAN:
		f = m.driver.vlan
	case semantics.PktLen:
		return uint64(m.Len), true
	}
	if f != nil {
		return bitfield.Read(m.cmpt, f.OffsetBits, f.WidthBits), true
	}
	if sf := m.driver.soft[s]; sf != nil {
		return sf(packet), true
	}
	return 0, false
}
