package baseline

import (
	"testing"

	"opendesc/internal/bitfield"
	"opendesc/internal/core"
	"opendesc/internal/nic"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
)

// fullCQE returns the mlx5 64-byte path and a completion record with
// recognizable values written into every semantic field.
func fullCQE(t *testing.T) (*core.Path, []byte, map[semantics.Name]uint64) {
	t.Helper()
	paths, err := nic.MustLoad("mlx5").Paths()
	if err != nil {
		t.Fatal(err)
	}
	var full *core.Path
	for _, p := range paths {
		if p.SizeBytes() == 64 {
			full = p
		}
	}
	if full == nil {
		t.Fatal("no full CQE path")
	}
	cmpt := make([]byte, 64)
	vals := map[semantics.Name]uint64{}
	seed := uint64(0x1234)
	for _, f := range full.Fields {
		if f.Semantic == "" || f.WidthBits > 64 {
			continue
		}
		v := seed
		if f.WidthBits < 64 {
			v &= (1 << f.WidthBits) - 1
		}
		bitfield.Write(cmpt, f.OffsetBits, f.WidthBits, v)
		vals[f.Semantic] = v
		seed = seed*2654435761 + 12345
	}
	return full, cmpt, vals
}

func TestSkBuffFillExtractsEverything(t *testing.T) {
	full, cmpt, vals := fullCQE(t)
	drv := NewSkBuffDriver(full)
	var skb SkBuff
	drv.Fill(&skb, cmpt, 1500)
	for _, s := range []semantics.Name{
		semantics.RSS, semantics.VLAN, semantics.Timestamp, semantics.Mark,
		semantics.FlowID, semantics.LROSegs, semantics.ErrorFlags,
	} {
		got, ok := skb.Read(s)
		if !ok {
			t.Errorf("%s not readable from sk_buff", s)
			continue
		}
		if got != vals[s] {
			t.Errorf("%s = %#x, want %#x", s, got, vals[s])
		}
	}
}

func TestSkBuffClearsControlBlock(t *testing.T) {
	full, cmpt, _ := fullCQE(t)
	drv := NewSkBuffDriver(full)
	var skb SkBuff
	skb.CB[0] = 0xFF
	drv.Fill(&skb, cmpt, 100)
	if skb.CB[0] != 0 {
		t.Error("control block not cleared per packet")
	}
	if skb.Len != uint64AsU32(getPktLenFrom(full, cmpt)) {
		// pkt_len field in the CQE overrides the wire length argument.
		t.Errorf("skb.Len = %d", skb.Len)
	}
}

func uint64AsU32(v uint64) uint32 { return uint32(v) }

func getPktLenFrom(p *core.Path, cmpt []byte) uint64 {
	f := p.Field(semantics.PktLen)
	return bitfield.Read(cmpt, f.OffsetBits, f.WidthBits)
}

func TestMbufStaticVsDynfield(t *testing.T) {
	full, cmpt, vals := fullCQE(t)
	drv := NewMbufDriver(full, nil)
	var mb Mbuf
	drv.Fill(&mb, cmpt, 1500)
	// Static fields.
	if got, ok := drv.Read(&mb, semantics.RSS); !ok || got != vals[semantics.RSS] {
		t.Errorf("rss = %#x/%v, want %#x", got, ok, vals[semantics.RSS])
	}
	if got, ok := drv.Read(&mb, semantics.VLAN); !ok || got != vals[semantics.VLAN] {
		t.Errorf("vlan = %#x/%v", got, ok)
	}
	// Dynfield-mediated offloads.
	for _, s := range []semantics.Name{semantics.Timestamp, semantics.FlowID, semantics.Mark} {
		if got, ok := drv.Read(&mb, s); !ok || got != vals[s] {
			t.Errorf("%s via dynfield = %#x/%v, want %#x", s, got, ok, vals[s])
		}
	}
}

func TestMbufDisabledOffloadSkipped(t *testing.T) {
	full, cmpt, _ := fullCQE(t)
	drv := NewMbufDriver(full, []semantics.Name{semantics.RSS}) // only RSS enabled
	var mb Mbuf
	drv.Fill(&mb, cmpt, 100)
	if _, ok := drv.Read(&mb, semantics.Timestamp); ok {
		t.Error("disabled offload readable")
	}
	if _, ok := drv.Read(&mb, semantics.RSS); !ok {
		t.Error("enabled offload unreadable")
	}
}

func TestMbufFlagGating(t *testing.T) {
	full, _, _ := fullCQE(t)
	drv := NewMbufDriver(full, nil)
	var mb Mbuf // never filled: flags are zero
	if _, ok := drv.Read(&mb, semantics.RSS); ok {
		t.Error("unset flag should gate the read")
	}
	if _, ok := drv.Read(&mb, semantics.Timestamp); ok {
		t.Error("unset dynfield flag should gate the read")
	}
}

func TestXDPThreeKfuncs(t *testing.T) {
	full, cmpt, vals := fullCQE(t)
	drv := NewXDPDriver(full, softnic.Funcs())
	meta := drv.Wrap(cmpt, 1500)
	for _, s := range XDPCoveredSemantics {
		got, ok := meta.Read(s, nil)
		if !ok || got != vals[s] {
			t.Errorf("kfunc %s = %#x/%v, want %#x", s, got, ok, vals[s])
		}
	}
	if v, ok := meta.Read(semantics.PktLen, nil); !ok || v != 1500 {
		t.Errorf("pkt_len = %d/%v", v, ok)
	}
}

func TestXDPFallsBackToSoftware(t *testing.T) {
	full, cmpt, vals := fullCQE(t)
	drv := NewXDPDriver(full, softnic.Funcs())
	meta := drv.Wrap(cmpt, 64)
	// ip_checksum is in the CQE but XDP has no accessor for it: must be
	// recomputed from the packet, not read from the descriptor.
	packet := buildTestPacket()
	got, ok := meta.Read(semantics.IPChecksum, packet)
	if !ok {
		t.Fatal("software fallback missing")
	}
	if got == vals[semantics.IPChecksum] {
		t.Error("value suspiciously equals the descriptor content (not recomputed?)")
	}
	// Semantics with neither kfunc nor software implementation fail.
	if _, ok := meta.Read(semantics.Mark, packet); ok {
		t.Error("mark has no kfunc and no software fallback; read must fail")
	}
}

func TestXDPMissingFieldUsesSoftware(t *testing.T) {
	// On the mlx5 compressed CQE there is no timestamp field: the kfunc is
	// absent and Read must fail (timestamp cannot be recomputed).
	paths, _ := nic.MustLoad("mlx5").Paths()
	var comp *core.Path
	for _, p := range paths {
		if p.SizeBytes() == 16 {
			comp = p
		}
	}
	drv := NewXDPDriver(comp, softnic.Funcs())
	meta := drv.Wrap(make([]byte, 16), 64)
	if _, ok := meta.Read(semantics.Timestamp, buildTestPacket()); ok {
		t.Error("timestamp must be unobtainable on the compressed CQE")
	}
	// But the hash kfunc still works.
	if _, ok := meta.Read(semantics.RSS, nil); !ok {
		t.Error("rss kfunc missing on compressed CQE")
	}
}

func buildTestPacket() []byte {
	// Minimal Ethernet+IPv4+UDP frame via the pkt builder would create an
	// import cycle here; hand-roll a 60-byte frame instead.
	p := make([]byte, 60)
	p[12], p[13] = 0x08, 0x00 // IPv4
	p[14] = 0x45
	p[17] = 46 // total length
	p[22] = 64 // ttl
	p[23] = 17 // udp
	return p
}
