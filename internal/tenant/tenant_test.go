package tenant

import (
	"strings"
	"testing"

	"opendesc/internal/evolve"
	"opendesc/internal/obs"
	"opendesc/internal/pkt"
	"opendesc/internal/softnic"
	"opendesc/internal/workload"
)

func fourTenants() []Spec {
	return []Spec{
		{Name: "lb", Semantics: []string{"rss", "pkt_len"}},
		{Name: "fw", Semantics: []string{"ip_checksum", "pkt_len"}},
		{Name: "telemetry", Semantics: []string{"pkt_len", "ptype"}},
		{Name: "kv", Semantics: []string{"rss", "vlan"}},
	}
}

// TestPlaneEndToEnd drives a Zipf multi-tenant trace through the full
// plane: classification, RSS steering, per-core polling, per-tenant
// accessor reads, and exactly-once accounting.
func TestPlaneEndToEnd(t *testing.T) {
	p, err := Open(Options{NIC: "mlx5", Cores: 4}, fourTenants()...)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.MustGenerateZipf(workload.ZipfSpec{
		Packets: 512, Flows: 1 << 20, Skew: 1.1, Tenants: 4, Seed: 9,
	})
	offered := make([]int, 4)
	for i, pk := range tr.Packets {
		if !p.Rx(pk) {
			t.Fatalf("rx rejected packet %d", i)
		}
		offered[tr.TenantOf[i]]++
	}
	if got := p.Pending(); got != 512 {
		t.Fatalf("pending = %d, want 512", got)
	}

	delivered := make([]int, 4)
	n := p.Drain(func(d Delivery) {
		delivered[d.Tenant]++
		var in pkt.Info
		if err := pkt.Decode(d.Pkt, &in); err != nil {
			t.Fatalf("delivered packet undecodable: %v", err)
		}
		if want := p.Steer(&in); d.Queue != want {
			t.Errorf("packet delivered from queue %d, steering says %d", d.Queue, want)
		}
		if d.Tenant == 0 || d.Tenant == 3 {
			hash, ok := d.Get("rss")
			if !ok || hash != uint64(softnic.RSS(&in)) {
				t.Errorf("tenant %d rss = %#x/%v, want %#x", d.Tenant, hash, ok, softnic.RSS(&in))
			}
		}
		if d.Tenant == 2 {
			l, ok := d.Get("pkt_len")
			if !ok || l != uint64(len(d.Pkt)) {
				t.Errorf("pkt_len = %d/%v, want %d", l, ok, len(d.Pkt))
			}
		}
		// A semantic outside the tenant's intent must not resolve.
		if _, ok := d.Get("timestamp"); ok {
			t.Error("timestamp resolved outside every intent")
		}
	})
	if n != 512 {
		t.Fatalf("drained %d, want 512", n)
	}
	for i := range delivered {
		if delivered[i] != offered[i] {
			t.Errorf("tenant %d: delivered %d, offered %d", i, delivered[i], offered[i])
		}
	}
	st := p.Stats()
	for i, ts := range st.Tenants {
		if ts.Accepted != uint64(offered[i]) || ts.Delivered != uint64(offered[i]) {
			t.Errorf("tenant %d stats = %+v, offered %d", i, ts, offered[i])
		}
	}
	if f := p.Fairness(); f < 0.90 {
		t.Errorf("Jain fairness = %v under round-robin Zipf sharding, want ≥ 0.90", f)
	}
	if p.Pending() != 0 {
		t.Errorf("pending after drain = %d", p.Pending())
	}

	// Traffic for no tenant is counted, not delivered.
	bad := pkt.NewBuilder().WithUDP(999, 9).Build()
	if p.Rx(bad) {
		t.Error("unclassified packet accepted")
	}
	if got := p.Stats().Unclassified; got != 1 {
		t.Errorf("unclassified = %d, want 1", got)
	}
}

// TestPlaneWorkStealing: a single elephant flow lands every packet on one
// RSS shard; an idle sibling core must steal its backlog in FIFO order.
func TestPlaneWorkStealing(t *testing.T) {
	p, err := Open(Options{NIC: "mlx5", Cores: 4}, fourTenants()...)
	if err != nil {
		t.Fatal(err)
	}
	const pkts = 8
	var victim int
	for i := 0; i < pkts; i++ {
		pk := pkt.NewBuilder().
			WithIPv4([4]byte{10, 0, 0, 1}, [4]byte{192, 168, 0, 0}).
			WithIPID(uint16(i)).
			WithUDP(7777, 20000).
			WithPayload([]byte("elephant")).
			Build()
		if i == 0 {
			var in pkt.Info
			if err := pkt.Decode(pk, &in); err != nil {
				t.Fatal(err)
			}
			victim = p.Steer(&in)
		}
		if !p.Rx(pk) {
			t.Fatalf("rx %d failed", i)
		}
	}
	thief := (victim + 1) % p.Cores()
	var order []uint16
	n := p.PollCore(thief, func(d Delivery) {
		if !d.Stolen || d.Queue != victim || d.Core != thief {
			t.Errorf("delivery = %+v, want stolen from %d by %d", d, victim, thief)
		}
		var in pkt.Info
		if err := pkt.Decode(d.Pkt, &in); err != nil {
			t.Fatal(err)
		}
		order = append(order, in.IPID)
	})
	if n != pkts {
		t.Fatalf("thief delivered %d, want %d", n, pkts)
	}
	for i, id := range order {
		if id != uint16(i) {
			t.Fatalf("stolen deliveries out of order: %v", order)
		}
	}
	st := p.Stats()
	if st.Steals != 1 || st.Cores[victim].Stolen != pkts {
		t.Errorf("steal stats = %+v", st)
	}
	// Disabled stealing keeps idle cores idle.
	p2, _ := Open(Options{NIC: "mlx5", Cores: 4, StealBatch: -1}, fourTenants()...)
	pk := pkt.NewBuilder().
		WithIPv4([4]byte{10, 0, 0, 1}, [4]byte{192, 168, 0, 0}).
		WithUDP(7777, 20000).Build()
	var in pkt.Info
	_ = pkt.Decode(pk, &in)
	p2.Rx(pk)
	idle := (p2.Steer(&in) + 1) % p2.Cores()
	if got := p2.PollCore(idle, func(Delivery) {}); got != 0 {
		t.Errorf("stealing disabled but idle core delivered %d", got)
	}
}

// TestPlaneRenegotiateFastPath: when the joint optimum keeps the same
// layout, a renegotiation swaps only the one tenant's accessor table —
// neighbors keep their exact runtime objects.
func TestPlaneRenegotiateFastPath(t *testing.T) {
	p, err := Open(Options{NIC: "mlx5", Cores: 2},
		Spec{Name: "pinned", Semantics: []string{"timestamp", "rss"}},
		Spec{Name: "mobile", Semantics: []string{"vlan"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	gen := p.Generation()
	neighborRT := p.tenants[0].rt
	pathID := p.Joint().Selected.Path.ID
	if err := p.Renegotiate("mobile", "flow_id", "pkt_len"); err != nil {
		t.Fatal(err)
	}
	if p.Joint().Selected.Path.ID != pathID {
		t.Fatalf("timestamp pins the full CQE; path moved to %v", p.Joint().Selected.Path.ID)
	}
	st := p.Stats()
	if st.FastRenegs != 1 || st.Renegs != 0 || st.Drained != 0 {
		t.Errorf("fast-path stats = %+v, want 1 fast reneg, no drain", st)
	}
	if p.Generation() != gen+1 {
		t.Errorf("generation = %d, want %d", p.Generation(), gen+1)
	}
	if p.tenants[0].rt != neighborRT {
		t.Error("neighbor's runtime was rebuilt on a fast-path renegotiation")
	}
	// The renegotiating tenant reads its new semantics.
	pk := pkt.NewBuilder().
		WithIPv4([4]byte{10, 1, 2, 3}, [4]byte{192, 168, 0, 1}).
		WithUDP(5555, 20001).Build()
	if !p.Rx(pk) {
		t.Fatal("rx after fast reneg")
	}
	saw := false
	p.Drain(func(d Delivery) {
		saw = true
		if d.Name != "mobile" {
			t.Fatalf("delivered to %s", d.Name)
		}
		if l, ok := d.Get("pkt_len"); !ok || l != uint64(len(pk)) {
			t.Errorf("pkt_len = %d/%v after reneg", l, ok)
		}
		if _, ok := d.Get("vlan"); ok {
			t.Error("dropped semantic still resolves")
		}
	})
	if !saw {
		t.Fatal("no delivery after fast reneg")
	}
	// Renegotiating an unknown tenant or an unknown semantic fails cleanly.
	if err := p.Renegotiate("ghost", "rss"); err == nil {
		t.Error("unknown tenant renegotiated")
	}
	if err := p.Renegotiate("mobile", "no_such_semantic"); err == nil {
		t.Error("unknown semantic accepted")
	}
	if p.Generation() != gen+1 {
		t.Error("failed renegotiations must not bump the generation")
	}
}

// TestPlaneRenegotiateSwitchover: a layout change drains every queue's
// in-flight completions under the OLD layout. Nothing is lost, per-queue
// order holds across the switchover, and the neighbor tenant reads
// correctly before and after.
func TestPlaneRenegotiateSwitchover(t *testing.T) {
	p, err := Open(Options{NIC: "mlx5", Cores: 2},
		Spec{Name: "lb", Semantics: []string{"rss"}},
		Spec{Name: "counter", Semantics: []string{"pkt_len"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	oldPath := p.Joint().Selected.Path.ID

	// Queue up in-flight traffic for both tenants, unpolled.
	wantOrder := make(map[int][]uint16)
	rss := make(map[uint16]uint64)
	const pkts = 24
	for i := 0; i < pkts; i++ {
		tenant := i % 2
		pk := pkt.NewBuilder().
			WithIPv4([4]byte{10, 9, byte(i), byte(i * 7)}, [4]byte{192, 168, 0, byte(tenant)}).
			WithIPID(uint16(i)).
			WithUDP(uint16(4000+i), uint16(20000+tenant)).
			Build()
		var in pkt.Info
		if err := pkt.Decode(pk, &in); err != nil {
			t.Fatal(err)
		}
		q := p.Steer(&in)
		wantOrder[q] = append(wantOrder[q], uint16(i))
		rss[uint16(i)] = uint64(softnic.RSS(&in))
		if !p.Rx(pk) {
			t.Fatalf("rx %d", i)
		}
	}

	// timestamp forces the full CQE: the layout must change.
	if err := p.Renegotiate("lb", "rss", "timestamp"); err != nil {
		t.Fatal(err)
	}
	if p.Joint().Selected.Path.ID == oldPath {
		t.Fatal("layout did not change; test needs a real switchover")
	}
	st := p.Stats()
	if st.Renegs != 1 || st.Drained != pkts || st.SoftParked != 0 || st.Rollbacks != 0 {
		t.Fatalf("switchover stats = %+v", st)
	}

	// New traffic after the switchover, interleaved behind the parked
	// backlog.
	for i := pkts; i < pkts+8; i++ {
		tenant := i % 2
		pk := pkt.NewBuilder().
			WithIPv4([4]byte{10, 9, byte(i), byte(i * 7)}, [4]byte{192, 168, 0, byte(tenant)}).
			WithIPID(uint16(i)).
			WithUDP(uint16(4000+i), uint16(20000+tenant)).
			Build()
		var in pkt.Info
		_ = pkt.Decode(pk, &in)
		wantOrder[p.Steer(&in)] = append(wantOrder[p.Steer(&in)], uint16(i))
		rss[uint16(i)] = uint64(softnic.RSS(&in))
		if !p.Rx(pk) {
			t.Fatalf("rx %d", i)
		}
	}

	gotOrder := make(map[int][]uint16)
	total := p.Drain(func(d Delivery) {
		var in pkt.Info
		if err := pkt.Decode(d.Pkt, &in); err != nil {
			t.Fatal(err)
		}
		gotOrder[d.Queue] = append(gotOrder[d.Queue], in.IPID)
		switch d.Name {
		case "lb":
			if h, ok := d.Get("rss"); !ok || h != rss[in.IPID] {
				t.Errorf("pkt %d: rss = %#x/%v, want %#x (read under its DMA-time layout)",
					in.IPID, h, ok, rss[in.IPID])
			}
		case "counter":
			if l, ok := d.Get("pkt_len"); !ok || l != uint64(len(d.Pkt)) {
				t.Errorf("pkt %d: neighbor pkt_len = %d/%v", in.IPID, l, ok)
			}
		}
	})
	if total != pkts+8 {
		t.Fatalf("drained %d of %d: packets lost in the switchover", total, pkts+8)
	}
	for q, want := range wantOrder {
		got := gotOrder[q]
		if len(got) != len(want) {
			t.Fatalf("queue %d delivered %d of %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("queue %d reordered: got %v want %v", q, got, want)
			}
		}
	}
}

// TestPlaneMaybeRenegotiate: the measured-mix control loop notices a tenant
// that never reads its expensive declared semantics and migrates the plane
// to a smaller joint layout; the dropped hardware fields keep working
// through the tenant's shim.
func TestPlaneMaybeRenegotiate(t *testing.T) {
	p, err := Open(Options{
		NIC: "mlx5", Cores: 2,
		Policy: evolve.JointPolicy{Interval: 32, MinWindow: 8, Hysteresis: 0.05},
	},
		Spec{Name: "greedy", Semantics: []string{"rss", "flow_id", "tunnel_id"}, Weight: 3},
		Spec{Name: "meek", Semantics: []string{"pkt_len"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(n int) {
		for i := 0; i < n; i++ {
			tenant := i % 2
			pk := pkt.NewBuilder().
				WithIPv4([4]byte{10, 3, byte(i >> 8), byte(i)}, [4]byte{192, 168, 0, byte(tenant)}).
				WithUDP(uint16(6000+i%100), uint16(20000+tenant)).
				Build()
			if !p.Rx(pk) {
				t.Fatalf("rx %d", i)
			}
		}
		p.Drain(func(d Delivery) {
			if d.Name == "greedy" {
				d.Get("rss") // the only semantic the tenant actually reads
			} else {
				d.Get("pkt_len")
			}
		})
	}
	// The static model must have picked a layout that carries flow_id in
	// hardware for the heavy tenant (otherwise there is nothing to shed).
	probeHW := func() bool {
		var hw bool
		pk := pkt.NewBuilder().
			WithIPv4([4]byte{10, 3, 3, 3}, [4]byte{192, 168, 0, 0}).
			WithUDP(6001, 20000).Build()
		if !p.Rx(pk) {
			t.Fatal("probe rx")
		}
		p.Drain(func(d Delivery) { hw = d.Hardware("flow_id") })
		return hw
	}
	if !probeHW() {
		t.Fatalf("static compile left flow_id in software (path %v); test premise broken",
			p.Joint().Selected.Path.ID)
	}
	feed(64)
	switched, err := p.MaybeRenegotiate()
	if err != nil {
		t.Fatal(err)
	}
	if !switched {
		t.Fatalf("measured mix (rss-only reads) did not shed the unread fields; joint %+v",
			p.Joint().Selected)
	}
	if probeHW() {
		t.Error("flow_id still hardware after the mix-driven switchover")
	}
	// The shed semantic still answers — through the shim now.
	pk := pkt.NewBuilder().
		WithIPv4([4]byte{10, 3, 2, 1}, [4]byte{192, 168, 0, 0}).
		WithUDP(6002, 20000).Build()
	var in pkt.Info
	_ = pkt.Decode(pk, &in)
	p.Rx(pk)
	p.Drain(func(d Delivery) {
		if f, ok := d.Get("flow_id"); !ok || f != uint64(softnic.FlowID(&in)) {
			t.Errorf("flow_id = %d/%v via shim, want %d", f, ok, softnic.FlowID(&in))
		}
	})
	// A second immediate evaluation is not due and does nothing.
	if switched, _ := p.MaybeRenegotiate(); switched {
		t.Error("re-solve fired with no new window")
	}
}

// TestPlaneValidation rejects malformed planes loudly.
func TestPlaneValidation(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Error("no tenants accepted")
	}
	if _, err := Open(Options{}, Spec{Semantics: []string{"rss"}}); err == nil {
		t.Error("unnamed tenant accepted")
	}
	if _, err := Open(Options{},
		Spec{Name: "a", Semantics: []string{"rss"}},
		Spec{Name: "a", Semantics: []string{"vlan"}},
	); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := Open(Options{},
		Spec{Name: "a", Semantics: []string{"rss"}, Port: 7},
		Spec{Name: "b", Semantics: []string{"vlan"}, Port: 7},
	); err == nil {
		t.Error("duplicate ports accepted")
	}
	if _, err := Open(Options{Cores: 65}, Spec{Name: "a", Semantics: []string{"rss"}}); err == nil {
		t.Error("65 cores accepted")
	}
	if _, err := Open(Options{NIC: "no_such_nic"}, Spec{Name: "a", Semantics: []string{"rss"}}); err == nil {
		t.Error("unknown NIC accepted")
	}
}

// TestPlaneMetrics: the plane exposes per-tenant and per-queue series on a
// shared registry without collisions.
func TestPlaneMetrics(t *testing.T) {
	p, err := Open(Options{NIC: "mlx5", Cores: 2}, fourTenants()...)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	p.RegisterMetrics(reg, obs.L("plane", "serving"))
	pk := pkt.NewBuilder().
		WithIPv4([4]byte{10, 0, 0, 1}, [4]byte{192, 168, 0, 0}).
		WithUDP(1234, 20000).Build()
	p.Rx(pk)
	p.Drain(func(Delivery) {})
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`opendesc_tenant_delivered_total{plane="serving",tenant="lb"} 1`,
		`opendesc_tenant_generation{plane="serving"} 1`,
		`queue="1"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q\n%s", want, out)
		}
	}
	if reg.Collisions() != 0 {
		t.Errorf("collisions = %d registering one plane", reg.Collisions())
	}
}
