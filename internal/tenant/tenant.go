// Package tenant is the multi-tenant serving plane (S24): N tenants each
// declare their own metadata intent, the compiler solves the joint Eq. 1
// optimization over all of them at once (core.CompileJoint) to program ONE
// device configuration, and traffic is sharded across a multi-queue device
// by Toeplitz RSS into per-core poll loops with work stealing. Each tenant
// reads metadata through its own accessor/shim split over the shared
// completion layout, with exactly-once in-order delivery per queue.
//
// The plane is the operational shape the paper's conclusion points at: one
// host, many applications, one evolvable metadata interface — a tenant can
// renegotiate its intent live (Renegotiate / MaybeRenegotiate via the
// evolve.JointPolicy) without its neighbors losing or reordering a single
// packet.
package tenant

import (
	"fmt"
	"sync"

	"opendesc/internal/codegen"
	"opendesc/internal/core"
	"opendesc/internal/evolve"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/obs"
	"opendesc/internal/pkt"
	"opendesc/internal/retry"
	"opendesc/internal/semantics"
	"opendesc/internal/softnic"
	"opendesc/internal/vclock"
)

// Spec declares one tenant of the serving plane.
type Spec struct {
	// Name labels the tenant (must be unique within the plane).
	Name string
	// Semantics is the tenant's metadata intent.
	Semantics []string
	// Weight is the tenant's expected traffic share in the joint Eq. 1
	// objective (zero means 1: equal shares).
	Weight float64
	// Port is the UDP destination port whose traffic belongs to the tenant
	// (zero assigns Options.BasePort + tenant index).
	Port uint16
}

// Options tunes the plane.
type Options struct {
	// NIC is the device model (default mlx5).
	NIC string
	// Cores is the number of device queues and per-core poll loops
	// (default 4, max 64).
	Cores int
	// RingEntries is the per-queue completion ring depth.
	RingEntries int
	// Compile tunes the joint path selection and enumeration.
	Compile core.CompileOptions
	// Clock is the timeline delivery latency is measured on (nil selects
	// the process wall clock; chaos runs inject a virtual clock).
	Clock vclock.Clock
	// Key is the Toeplitz steering key (default the symmetric key, so both
	// directions of a flow land on the same core).
	Key []byte
	// BasePort is the default per-tenant port base (default 20000).
	BasePort uint16
	// Policy schedules measured-mix renegotiation (see MaybeRenegotiate).
	Policy evolve.JointPolicy
	// StealBatch bounds how many completions an idle core takes from the
	// most loaded sibling per poll (default 16; negative disables
	// stealing).
	StealBatch int
}

func (o Options) withDefaults() Options {
	if o.NIC == "" {
		o.NIC = "mlx5"
	}
	if o.Cores == 0 {
		o.Cores = 4
	}
	if o.Key == nil {
		o.Key = softnic.SymmetricToeplitzKey[:]
	}
	if o.BasePort == 0 {
		o.BasePort = 20000
	}
	if o.StealBatch == 0 {
		o.StealBatch = 16
	}
	o.Policy = o.Policy.WithDefaults()
	return o
}

// pendingPkt is one accepted packet awaiting its completion on a queue.
type pendingPkt struct {
	pkt    []byte
	tenant int
	ts     uint64 // Rx clock stamp (latency measurement)
}

// parkedDelivery is a completion drained during a layout switchover: the
// record bytes are copied out of the ring and the old generation's runtime
// is captured so the packet is still read under the layout it was DMAed
// with. Parked deliveries drain first on the next poll, preserving order.
type parkedDelivery struct {
	pkt    []byte
	cmpt   []byte
	tenant int
	rt     *codegen.Runtime
	ts     uint64
}

// queueState is one RSS shard: a device queue, its pending FIFO, and its
// parked switchover backlog. The mutex serializes the queue's producer
// (Rx) and consumers (owner core + stealing cores) — the completion ring
// itself is SPSC, so stealing must hold the queue lock.
type queueState struct {
	mu      sync.Mutex
	dev     *nicsim.Device
	pending []pendingPkt
	parked  []parkedDelivery

	polls     obs.Counter // PollCore invocations that drained this queue
	delivered obs.Counter // deliveries consumed from this queue
	stolen    obs.Counter // deliveries consumed by a non-owner core
}

// tenantState is one tenant's runtime view: its intent, its accessor/shim
// split over the shared layout (swapped atomically under the plane lock on
// renegotiation), and its delivery counters.
type tenantState struct {
	spec   Spec
	intent *core.Intent
	port   uint16
	rt     *codegen.Runtime

	accepted  obs.Counter
	delivered obs.Counter
	renegs    obs.Counter
	lat       *obs.Histogram // Rx → deliver latency (plane clock)
}

// Plane is the multi-tenant serving plane.
type Plane struct {
	// mu is the config lock: datapath operations (Rx, PollCore) hold it for
	// reading; renegotiation takes it exclusively, which quiesces every
	// queue at once.
	mu sync.RWMutex

	model   *nic.Model
	opts    Options
	joint   *core.JointResult
	gen     uint64
	queues  []*queueState
	tenants []*tenantState
	byPort  map[uint16]int
	clock   vclock.Clock
	mix     *evolve.MixTracker

	lastEval uint64 // aggregate deliveries at the last MaybeRenegotiate

	renegs       obs.Counter // completed layout switchovers
	fastRenegs   obs.Counter // accessor-only renegotiations (layout kept)
	rollbacks    obs.Counter // switchovers reverted after an apply failure
	drainedPkts  obs.Counter // completions parked across switchovers
	softParked   obs.Counter // drain shortfalls re-read in software
	steals       obs.Counter // stolen delivery batches
	unclassified obs.Counter // packets matching no tenant port
}

// Open compiles the tenants' joint intent, programs one device per core
// with the shared winning configuration, and builds each tenant's accessor
// runtime.
func Open(opts Options, specs ...Spec) (*Plane, error) {
	opts = opts.withDefaults()
	if len(specs) == 0 {
		return nil, fmt.Errorf("tenant: plane needs at least one tenant")
	}
	if opts.Cores < 1 || opts.Cores > 64 {
		return nil, fmt.Errorf("tenant: core count %d out of [1,64]", opts.Cores)
	}
	m, err := nic.Load(opts.NIC)
	if err != nil {
		return nil, err
	}
	p := &Plane{
		model:  m,
		opts:   opts,
		clock:  vclock.Or(opts.Clock),
		byPort: make(map[uint16]int, len(specs)),
	}
	intents := make([][]semantics.Name, len(specs))
	for i, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("tenant: tenant %d has no name", i)
		}
		port := s.Port
		if port == 0 {
			port = opts.BasePort + uint16(i)
			s.Port = port
		}
		if prev, dup := p.byPort[port]; dup {
			return nil, fmt.Errorf("tenant: %s and %s share port %d", specs[prev].Name, s.Name, port)
		}
		intent, err := intentFor(s.Name, s.Semantics)
		if err != nil {
			return nil, err
		}
		p.byPort[port] = i
		p.tenants = append(p.tenants, &tenantState{
			spec:   s,
			intent: intent,
			port:   port,
			lat:    obs.NewHistogram(),
		})
		intents[i] = intent.Req().Sorted()
	}
	for i := range p.tenants {
		for j := i + 1; j < len(p.tenants); j++ {
			if p.tenants[i].spec.Name == p.tenants[j].spec.Name {
				return nil, fmt.Errorf("tenant: duplicate tenant name %q", p.tenants[i].spec.Name)
			}
		}
	}
	p.mix = evolve.NewMixTracker(intents)

	jr, err := m.CompileJoint(p.jointIntents(), opts.Compile)
	if err != nil {
		return nil, err
	}
	for q := 0; q < opts.Cores; q++ {
		dev, err := nicsim.New(m, nicsim.Config{
			RingEntries: opts.RingEntries,
			QueueID:     uint16(q),
			Clock:       opts.Clock,
		})
		if err != nil {
			return nil, err
		}
		if err := dev.ApplyConfig(jr.Config); err != nil {
			return nil, err
		}
		p.queues = append(p.queues, &queueState{dev: dev})
	}
	p.install(jr)
	return p, nil
}

func intentFor(name string, sems []string) (*core.Intent, error) {
	names := make([]semantics.Name, len(sems))
	for i, s := range sems {
		names[i] = semantics.Name(s)
	}
	return core.IntentFromSemantics(name+"_intent", semantics.Default, names...)
}

// jointIntents snapshots the current tenant intents for a joint compile.
func (p *Plane) jointIntents() []core.TenantIntent {
	out := make([]core.TenantIntent, len(p.tenants))
	for i, t := range p.tenants {
		out[i] = core.TenantIntent{Tenant: t.spec.Name, Intent: t.intent, Weight: t.spec.Weight}
	}
	return out
}

// install swaps in a joint result's per-tenant runtimes. Caller holds the
// write lock (or is Open, pre-publication).
func (p *Plane) install(jr *core.JointResult) {
	p.joint = jr
	for i, t := range p.tenants {
		t.rt = codegen.NewRuntime(jr.PerTenant[i], softnic.Funcs())
	}
	p.gen++
}

// Cores returns the number of queues / poll loops.
func (p *Plane) Cores() int { return len(p.queues) }

// Tenants returns the tenant names in index order.
func (p *Plane) Tenants() []string {
	out := make([]string, len(p.tenants))
	for i, t := range p.tenants {
		out[i] = t.spec.Name
	}
	return out
}

// Joint returns the current joint compilation.
func (p *Plane) Joint() *core.JointResult {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.joint
}

// Generation returns the layout generation (bumped by every renegotiation).
func (p *Plane) Generation() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.gen
}

// Steer computes the RSS shard a decoded packet lands on — exposed so
// harnesses can model the plane's sharding decision.
func (p *Plane) Steer(info *pkt.Info) int {
	return int(softnic.RSSKey(p.opts.Key, info) % uint32(len(p.queues)))
}

// Rx accepts one packet from the wire: classify its tenant by destination
// port, steer it onto an RSS shard, and DMA it into that queue's device. It
// returns false when the packet matches no tenant or the shard's completion
// ring is full.
func (p *Plane) Rx(packet []byte) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var info pkt.Info
	if err := pkt.Decode(packet, &info); err != nil {
		p.unclassified.Inc()
		return false
	}
	ti, ok := p.byPort[info.DstPort]
	if !ok {
		p.unclassified.Inc()
		return false
	}
	q := p.Steer(&info)
	qs := p.queues[q]
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if !qs.dev.RxPacket(packet) {
		return false
	}
	qs.pending = append(qs.pending, pendingPkt{pkt: packet, tenant: ti, ts: p.clock.Now()})
	p.tenants[ti].accepted.Inc()
	return true
}

// Delivery is one packet handed to a tenant handler inside PollCore.
type Delivery struct {
	// Tenant / Name identify the owning tenant.
	Tenant int
	Name   string
	// Queue is the RSS shard the packet arrived on; Core is the poll loop
	// that delivered it. They differ exactly when the delivery was stolen.
	Queue  int
	Core   int
	Stolen bool
	Pkt    []byte

	rt   *codegen.Runtime
	cmpt []byte
	note func(int, semantics.Name)
}

// Get reads one semantic for the delivered packet through the tenant's own
// accessor split: a constant-time completion-record load when the shared
// layout carries it, the tenant's SoftNIC shim otherwise. ok is false for
// semantics outside the tenant's compiled intent.
func (d *Delivery) Get(sem string) (uint64, bool) {
	name := semantics.Name(sem)
	if d.note != nil {
		d.note(d.Tenant, name)
	}
	r := d.rt.Reader(name)
	if r == nil || !r.Linked() {
		return 0, false
	}
	return r.Read(d.cmpt, d.Pkt), true
}

// Hardware reports whether the tenant reads the semantic directly from the
// completion record.
func (d *Delivery) Hardware(sem string) bool {
	r := d.rt.Reader(semantics.Name(sem))
	return r != nil && r.Hardware
}

// Width returns the linked accessor's field width in bits (0 when the
// semantic is not linked). A hardware field narrower than the semantic's
// natural width truncates the value to the field — oracles comparing reads
// against full-width ground truth must mask to this width.
func (d *Delivery) Width(sem string) int {
	r := d.rt.Reader(semantics.Name(sem))
	if r == nil || !r.Linked() {
		return 0
	}
	return r.WidthBits
}

// PollCore runs one iteration of core's poll loop: drain the own shard;
// when it is empty, steal a bounded batch from the most loaded sibling.
// Deliveries preserve each queue's FIFO order (parked switchover backlog
// first, then ring completions) regardless of who consumes them.
func (p *Plane) PollCore(core int, h func(Delivery)) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if core < 0 || core >= len(p.queues) {
		return 0
	}
	n := p.pollQueue(core, core, -1, h)
	if n == 0 && p.opts.StealBatch > 0 {
		if victim := p.busiest(core); victim >= 0 {
			n = p.pollQueue(core, victim, p.opts.StealBatch, h)
			if n > 0 {
				p.steals.Inc()
			}
		}
	}
	return n
}

// busiest picks the steal victim: the queue (≠ self) with the largest
// backlog. Returns -1 when every sibling is idle.
func (p *Plane) busiest(self int) int {
	victim, most := -1, 0
	for q := range p.queues {
		if q == self {
			continue
		}
		qs := p.queues[q]
		qs.mu.Lock()
		backlog := len(qs.pending) + len(qs.parked)
		qs.mu.Unlock()
		if backlog > most {
			victim, most = q, backlog
		}
	}
	return victim
}

// pollQueue drains up to limit deliveries (negative: unbounded) from queue
// q on behalf of core. Caller holds p.mu.RLock.
func (p *Plane) pollQueue(core, q, limit int, h func(Delivery)) int {
	qs := p.queues[q]
	qs.mu.Lock()
	defer qs.mu.Unlock()
	n := 0
	stolen := core != q

	parked := 0
	for parked < len(qs.parked) && (limit < 0 || n < limit) {
		pd := qs.parked[parked]
		p.deliver(core, q, pd.tenant, stolen, pd.pkt, pd.cmpt, pd.rt, pd.ts, h)
		parked++
		n++
	}
	if parked > 0 {
		qs.parked = qs.parked[:copy(qs.parked, qs.parked[parked:])]
	}

	consumed := 0
	for consumed < len(qs.pending) && (limit < 0 || n < limit) {
		pe := qs.pending[consumed]
		if !qs.dev.CmptRing.Consume(func(cmpt []byte) {
			p.deliver(core, q, pe.tenant, stolen, pe.pkt, cmpt, p.tenants[pe.tenant].rt, pe.ts, h)
		}) {
			break
		}
		consumed++
		n++
	}
	if consumed > 0 {
		qs.pending = qs.pending[:copy(qs.pending, qs.pending[consumed:])]
	}

	if n > 0 {
		qs.polls.Inc()
		qs.delivered.Add(uint64(n))
		if stolen {
			qs.stolen.Add(uint64(n))
		}
	}
	return n
}

// deliver invokes the handler and settles the tenant's accounting. Caller
// holds the queue lock.
func (p *Plane) deliver(core, q, ti int, stolen bool, pktB, cmpt []byte, rt *codegen.Runtime, rxTS uint64, h func(Delivery)) {
	t := p.tenants[ti]
	h(Delivery{
		Tenant: ti, Name: t.spec.Name,
		Queue: q, Core: core, Stolen: stolen,
		Pkt: pktB, rt: rt, cmpt: cmpt, note: p.mix.NoteRead,
	})
	t.delivered.Inc()
	p.mix.NoteDelivered(ti, 1)
	if rxTS != 0 {
		now := p.clock.Now()
		if now > rxTS {
			t.lat.Observe(now - rxTS)
		} else {
			t.lat.Observe(0)
		}
	}
}

// Drain polls every core round-robin until the plane is empty; used by
// tests and the experiment tails. Returns total deliveries.
func (p *Plane) Drain(h func(Delivery)) int {
	total := 0
	for {
		n := 0
		for c := range p.queues {
			n += p.PollCore(c, h)
		}
		total += n
		if n == 0 {
			return total
		}
	}
}

// Pending reports packets accepted but not yet delivered (pending + parked
// across all queues).
func (p *Plane) Pending() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for _, qs := range p.queues {
		qs.mu.Lock()
		n += len(qs.pending) + len(qs.parked)
		qs.mu.Unlock()
	}
	return n
}

// Renegotiate replaces one tenant's intent and re-solves the joint layout
// for the whole plane. The switchover is loss-free for every tenant: the
// plane quiesces (exclusive lock), drains all in-flight completions under
// the OLD layout into parked deliveries, applies the new configuration to
// every queue (bounded retries, rollback on failure), verifies the active
// path, and only then swaps the accessor runtimes. When the joint optimum
// keeps the same path, only the renegotiating tenant's accessor table is
// swapped — neighbors are untouched by construction.
func (p *Plane) Renegotiate(name string, sems ...string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	ti := -1
	for i, t := range p.tenants {
		if t.spec.Name == name {
			ti = i
			break
		}
	}
	if ti < 0 {
		return fmt.Errorf("tenant: no tenant %q", name)
	}
	intent, err := intentFor(name, sems)
	if err != nil {
		return err
	}
	old := p.tenants[ti].intent
	p.tenants[ti].intent = intent
	jr, err := p.model.CompileJoint(p.jointIntents(), p.opts.Compile)
	if err != nil {
		p.tenants[ti].intent = old
		return err
	}
	if err := p.switchTo(jr, ti); err != nil {
		p.tenants[ti].intent = old
		return err
	}
	p.tenants[ti].spec.Semantics = append([]string(nil), sems...)
	p.mix.Retarget(ti, intent.Req().Sorted())
	p.tenants[ti].renegs.Inc()
	return nil
}

// MaybeRenegotiate is the measured-mix control-plane tick (the joint
// analogue of the evolve engine's Interval re-solve): every
// Policy.Interval aggregate deliveries it re-solves the joint objective
// under each tenant's observed read frequencies and live traffic weights,
// and switches the layout when a candidate clears the hysteresis. Call it
// from a serving loop; it is cheap when not due.
func (p *Plane) MaybeRenegotiate() (switched bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pol := p.opts.Policy
	total := p.mix.TotalDelivered()
	if !pol.Due(total, p.lastEval) {
		return false, nil
	}
	if total-p.lastEval < uint64(pol.MinWindow) {
		return false, nil
	}
	p.lastEval = total

	base := semantics.RegistryCosts(semantics.Default)
	weights := p.mix.Weights()
	tenants := make([]core.TenantIntent, len(p.tenants))
	for i, t := range p.tenants {
		mix, _ := p.mix.Window(i)
		tenants[i] = core.TenantIntent{
			Tenant: t.spec.Name,
			Intent: t.intent,
			Weight: weights[i],
			Costs:  evolve.WeightedMixCosts(t.intent.CostModel(base), mix),
		}
	}
	jr, err := p.model.CompileJoint(tenants, p.opts.Compile)
	if err != nil {
		return false, err
	}
	if jr.Selected.Path.ID == p.joint.Selected.Path.ID {
		return false, nil
	}
	var activeTotal float64
	for _, js := range jr.Scored {
		if js.Path.ID == p.joint.Selected.Path.ID {
			activeTotal = js.Total
			break
		}
	}
	if !pol.Improves(activeTotal, jr.Selected.Total) {
		return false, nil
	}
	if err := p.switchTo(jr, -1); err != nil {
		return false, err
	}
	return true, nil
}

// switchTo executes the switchover to a new joint result. Caller holds the
// write lock (all queues quiesced). fastTenant ≥ 0 allows the accessor-only
// fast path when the selected path is unchanged: only that tenant's runtime
// is swapped (the shared layout, and therefore every neighbor's view, is
// bit-identical).
func (p *Plane) switchTo(jr *core.JointResult, fastTenant int) error {
	if jr.Selected.Path.ID == p.joint.Selected.Path.ID && fastTenant >= 0 {
		p.joint = jr
		p.tenants[fastTenant].rt = codegen.NewRuntime(jr.PerTenant[fastTenant], softnic.Funcs())
		p.gen++
		p.fastRenegs.Inc()
		return nil
	}

	// Drain every queue's in-flight completions under the old layout. The
	// record bytes are copied out of the ring (the ring slot is recycled)
	// and parked with the old runtime, so later polls still read them under
	// the layout they were DMAed with.
	for q, qs := range p.queues {
		for _, pe := range qs.pending {
			ok := qs.dev.CmptRing.Consume(func(cmpt []byte) {
				qs.parked = append(qs.parked, parkedDelivery{
					pkt: pe.pkt, cmpt: append([]byte(nil), cmpt...),
					tenant: pe.tenant, rt: p.tenants[pe.tenant].rt, ts: pe.ts,
				})
			})
			if !ok {
				// Shortfall (cannot happen on a healthy device): fall back
				// to an all-software read of the packet bytes.
				qs.parked = append(qs.parked, parkedDelivery{
					pkt: pe.pkt, tenant: pe.tenant,
					rt: codegen.NewSoftRuntime(p.joint.PerTenant[pe.tenant], softnic.Funcs()),
					ts: pe.ts,
				})
				p.softParked.Inc()
			}
			p.drainedPkts.Inc()
		}
		qs.pending = qs.pending[:0]
		_ = q
	}

	// Apply the new configuration to every queue; roll every queue back to
	// the old configuration if any apply fails.
	applied := 0
	var applyErr error
	for _, qs := range p.queues {
		if applyErr = applyWithRetries(qs.dev, jr.Config); applyErr != nil {
			break
		}
		applied++
	}
	if applyErr == nil {
		for _, qs := range p.queues {
			if ap, err := qs.dev.ActivePath(); err != nil || ap.ID != jr.Selected.Path.ID {
				applyErr = fmt.Errorf("tenant: switchover verification failed (active path %v, err %v)", ap, err)
				break
			}
		}
	}
	if applyErr != nil {
		for i := 0; i < applied; i++ {
			if err := applyWithRetries(p.queues[i].dev, p.joint.Config); err != nil {
				return fmt.Errorf("tenant: switchover failed and rollback failed on queue %d: %v (original: %w)", i, err, applyErr)
			}
		}
		p.rollbacks.Inc()
		return applyErr
	}

	p.install(jr)
	p.renegs.Inc()
	return nil
}

// applyWithRetries programs one queue with the shared bounded-retry
// discipline (defaults matching the evolve engine's ×4 schedule).
func applyWithRetries(dev *nicsim.Device, cfg []core.Constraint) error {
	return retry.Policy{}.Do(func() error { return dev.ApplyConfig(cfg) })
}

// TenantStats is one tenant's delivery snapshot.
type TenantStats struct {
	Name      string
	Port      uint16
	Accepted  uint64
	Delivered uint64
	Renegs    uint64
	// P50/P99 are Rx→deliver latency quantiles on the plane clock (ns).
	P50, P99 float64
}

// CoreStats is one queue/poll-loop snapshot.
type CoreStats struct {
	Polls     uint64
	Delivered uint64
	Stolen    uint64
}

// Stats is a point-in-time snapshot of the plane.
type Stats struct {
	Generation   uint64
	Renegs       uint64 // layout switchovers
	FastRenegs   uint64 // accessor-only renegotiations
	Rollbacks    uint64
	Drained      uint64
	SoftParked   uint64
	Steals       uint64
	Unclassified uint64
	Tenants      []TenantStats
	Cores        []CoreStats
}

// Stats snapshots the plane's counters.
func (p *Plane) Stats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st := Stats{
		Generation:   p.gen,
		Renegs:       p.renegs.Load(),
		FastRenegs:   p.fastRenegs.Load(),
		Rollbacks:    p.rollbacks.Load(),
		Drained:      p.drainedPkts.Load(),
		SoftParked:   p.softParked.Load(),
		Steals:       p.steals.Load(),
		Unclassified: p.unclassified.Load(),
	}
	for _, t := range p.tenants {
		snap := t.lat.Snapshot()
		st.Tenants = append(st.Tenants, TenantStats{
			Name:      t.spec.Name,
			Port:      t.port,
			Accepted:  t.accepted.Load(),
			Delivered: t.delivered.Load(),
			Renegs:    t.renegs.Load(),
			P50:       float64(snap.Quantile(0.50)),
			P99:       float64(snap.Quantile(0.99)),
		})
	}
	for _, qs := range p.queues {
		st.Cores = append(st.Cores, CoreStats{
			Polls:     qs.polls.Load(),
			Delivered: qs.delivered.Load(),
			Stolen:    qs.stolen.Load(),
		})
	}
	return st
}

// Fairness returns Jain's fairness index over per-tenant SERVICE ratios
// (delivered/accepted): 1.0 means every tenant's admitted traffic was served
// in full proportion; 1/N means one tenant got service while the rest
// starved. Raw demand skew (tenants offering different loads) does not lower
// it — what the plane owes tenants is proportional service, not equal
// traffic. A tenant that offered nothing counts as fully served.
func (p *Plane) Fairness() float64 {
	st := p.Stats()
	xs := make([]float64, len(st.Tenants))
	for i, t := range st.Tenants {
		if t.Accepted == 0 {
			xs[i] = 1
			continue
		}
		xs[i] = float64(t.Delivered) / float64(t.Accepted)
	}
	return JainFairness(xs)
}

// JainFairness computes Jain's index (Σx)² / (n·Σx²) over the shares.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// RegisterMetrics exposes the plane on an obs registry: per-tenant series
// under tenant="name" labels and per-queue series under queue="N" labels,
// each in its own namespace view so many planes (or planes plus drivers)
// can share one stats endpoint.
func (p *Plane) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	base := reg.WithLabels(labels...)
	base.GaugeFunc("opendesc_tenant_generation", "joint layout generation", func() int64 {
		p.mu.RLock()
		defer p.mu.RUnlock()
		return int64(p.gen)
	})
	base.AttachCounter("opendesc_tenant_renegotiations_total", "completed layout switchovers", &p.renegs)
	base.AttachCounter("opendesc_tenant_fast_renegotiations_total", "accessor-only renegotiations", &p.fastRenegs)
	base.AttachCounter("opendesc_tenant_rollbacks_total", "switchovers rolled back", &p.rollbacks)
	base.AttachCounter("opendesc_tenant_drained_total", "completions parked across switchovers", &p.drainedPkts)
	base.AttachCounter("opendesc_tenant_steals_total", "stolen delivery batches", &p.steals)
	base.AttachCounter("opendesc_tenant_unclassified_total", "packets matching no tenant port", &p.unclassified)
	for _, t := range p.tenants {
		tr := base.WithLabels(obs.L("tenant", t.spec.Name))
		tr.AttachCounter("opendesc_tenant_rx_accepted_total", "packets accepted for the tenant", &t.accepted)
		tr.AttachCounter("opendesc_tenant_delivered_total", "packets delivered to the tenant", &t.delivered)
		tr.AttachHistogram("opendesc_tenant_delivery_latency_ns", "Rx to delivery latency", t.lat)
	}
	for q, qs := range p.queues {
		qr := base.WithLabels(obs.L("queue", fmt.Sprintf("%d", q)))
		qs.dev.RegisterMetrics(qr)
		qr.AttachCounter("opendesc_tenant_queue_delivered_total", "deliveries consumed from the queue", &qs.delivered)
		qr.AttachCounter("opendesc_tenant_queue_stolen_total", "deliveries consumed by a non-owner core", &qs.stolen)
	}
}
