package tenant_test

import (
	"fmt"
	"testing"

	"opendesc/internal/tenant"
	"opendesc/internal/workload"
)

// BenchmarkRxPoll measures the single-threaded per-packet cost of the serving
// plane: classify + steer + DMA on Rx, ring consume + accessor read on Poll.
func BenchmarkRxPoll(b *testing.B) {
	for _, tenants := range []int{1, 16} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			specs := make([]tenant.Spec, tenants)
			for i := range specs {
				specs[i] = tenant.Spec{
					Name:      fmt.Sprintf("t%02d", i),
					Semantics: []string{"rss", "pkt_len"},
				}
			}
			p, err := tenant.Open(tenant.Options{NIC: "mlx5", Cores: 1, RingEntries: 512}, specs...)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := workload.GenerateZipf(workload.ZipfSpec{
				Packets: 512, Flows: 1 << 20, Skew: 1.1, Tenants: tenants, Seed: 7,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pk := tr.Packets[i%len(tr.Packets)]
				if !p.Rx(pk) {
					b.Fatal("ring full")
				}
				if n := p.PollCore(0, func(d tenant.Delivery) { d.Get("rss") }); n != 1 {
					b.Fatalf("poll returned %d", n)
				}
			}
		})
	}
}
