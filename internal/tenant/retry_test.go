package tenant

import (
	"testing"

	"opendesc/internal/core"
	"opendesc/internal/faults"
	"opendesc/internal/nic"
	"opendesc/internal/nicsim"
	"opendesc/internal/retry"
	"opendesc/internal/semantics"
)

// TestApplyWithRetriesAttemptCount pins the retry.Policy adoption to the
// legacy schedule: against a control channel that NAKs every burst,
// applyWithRetries makes exactly retry.DefaultAttempts (4) ApplyConfig
// attempts — the same count the old hardcoded ×4 loop made — and the
// device accepts on the first attempt once the channel heals.
func TestApplyWithRetriesAttemptCount(t *testing.T) {
	m := nic.MustLoad("mlx5")
	intent, err := core.IntentFromSemantics("t", semantics.Default, semantics.RSS)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Compile(intent, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dev := nicsim.MustNew(m, nicsim.Config{})

	dev.InjectFaults(faults.New(faults.Plan{Seed: 7, NAKP: 1}))
	if err := applyWithRetries(dev, res.Config); err == nil {
		t.Fatal("ApplyConfig under a full NAK storm must fail")
	}
	if naks := dev.Stats().ConfigNAKs; naks != retry.DefaultAttempts {
		t.Fatalf("made %d attempts, want exactly %d (the legacy ×4 schedule)",
			naks, retry.DefaultAttempts)
	}

	dev.InjectFaults(nil)
	if err := applyWithRetries(dev, res.Config); err != nil {
		t.Fatalf("healed channel: %v", err)
	}
	if naks := dev.Stats().ConfigNAKs; naks != retry.DefaultAttempts {
		t.Fatalf("healed apply added attempts: ConfigNAKs = %d", naks)
	}
}
