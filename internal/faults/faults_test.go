package faults

import (
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("corrupt=1e-3,truncate=1e-4,drop=0.25,nak=0.5,hang=2@5000,burst=128,bits=3,dup=0.1,replay=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if p.CorruptP != 1e-3 || p.TruncateP != 1e-4 || p.DropP != 0.25 || p.NAKP != 0.5 {
		t.Fatalf("probabilities mis-parsed: %+v", p)
	}
	if p.HangCount != 2 || p.HangMTBF != 5000 || p.HangBurst != 128 || p.BurstBits != 3 {
		t.Fatalf("hang spec mis-parsed: %+v", p)
	}
	if p.DuplicateP != 0.1 || p.ReplayP != 0.2 {
		t.Fatalf("dup/replay mis-parsed: %+v", p)
	}
	for _, bad := range []string{"corrupt", "corrupt=2", "hang=5", "hang=2@0", "bogus=1", "burst=-1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): want error", bad)
		}
	}
	if _, err := ParseSpec(""); err != nil {
		t.Errorf("empty spec should be the null plan: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]byte, Stats) {
		inj := New(Plan{Seed: 7, CorruptP: 0.2, DropP: 0.1, TruncateP: 0.1})
		var log []byte
		rec := make([]byte, 16)
		for i := 0; i < 2000; i++ {
			for j := range rec {
				rec[j] = byte(i + j)
			}
			out, _ := inj.Completion(rec)
			if out == nil {
				log = append(log, 0xFF)
			} else {
				log = append(log, out...)
			}
		}
		return log, inj.Stats()
	}
	a, sa := run()
	b, sb := run()
	if !bytesEqual(a, b) {
		t.Fatal("same seed produced different fault sequences")
	}
	if sa.Total() != sb.Total() || sa.Total() == 0 {
		t.Fatalf("stats diverged or empty: %d vs %d", sa.Total(), sb.Total())
	}
	c, _ := func() ([]byte, Stats) {
		inj := New(Plan{Seed: 8, CorruptP: 0.2, DropP: 0.1, TruncateP: 0.1})
		var log []byte
		rec := make([]byte, 16)
		for i := 0; i < 2000; i++ {
			for j := range rec {
				rec[j] = byte(i + j)
			}
			out, _ := inj.Completion(rec)
			if out == nil {
				log = append(log, 0xFF)
			} else {
				log = append(log, out...)
			}
		}
		return log, inj.Stats()
	}()
	if bytesEqual(a, c) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestHangScheduleAndReset(t *testing.T) {
	inj := New(Plan{Seed: 1, HangCount: 2, HangMTBF: 100, HangBurst: 10})
	hangs := 0
	for op := 1; op <= 400; op++ {
		wasHung := inj.Hung()
		hung := inj.Tick()
		if hung && !wasHung {
			hangs++
			// Resets must fail until the burst elapses.
			if inj.TryReset() {
				t.Fatalf("op %d: reset succeeded immediately after hang onset", op)
			}
			// Burn the burst (each tick is one wedged device op).
			for inj.Tick() && inj.hangLeft > 0 {
			}
			if !inj.TryReset() {
				t.Fatalf("op %d: reset still failing after burst elapsed", op)
			}
			if inj.Hung() {
				t.Fatal("device still hung after successful reset")
			}
		}
	}
	if hangs != 2 {
		t.Fatalf("got %d hangs, want 2", hangs)
	}
	st := inj.Stats()
	if st.Injected[Hang] != 2 || st.Resets != 2 || st.ResetNAKs != 2 {
		t.Fatalf("hang accounting off: %+v", st)
	}
}

func TestCompletionClasses(t *testing.T) {
	// Probability-1 classes must fire every time and be counted.
	rec := func() []byte { return []byte{1, 2, 3, 4, 5, 6, 7, 8} }

	inj := New(Plan{Seed: 3, DropP: 1})
	if out, _ := inj.Completion(rec()); out != nil {
		t.Fatal("drop plan returned a record")
	}
	if inj.Stats().Injected[Drop] != 1 {
		t.Fatal("drop not counted")
	}

	inj = New(Plan{Seed: 3, CorruptP: 1})
	r := rec()
	out, _ := inj.Completion(r)
	if bytesEqual(out, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatal("corrupt plan left record unchanged")
	}
	if inj.Stats().Injected[Corrupt] != 1 {
		t.Fatal("corrupt not counted")
	}

	inj = New(Plan{Seed: 3, DuplicateP: 1})
	out, extra := inj.Completion(rec())
	if out == nil || extra == nil || !bytesEqual(out, extra) {
		t.Fatal("duplicate plan did not return two identical records")
	}

	// Replay needs history: the first completion is clean (nothing to
	// replay), later ones must return an older record.
	inj = New(Plan{Seed: 3, ReplayP: 1})
	first := rec()
	if out, _ := inj.Completion(first); !bytesEqual(out, first) {
		t.Fatal("replay with empty history should pass through")
	}
	second := []byte{9, 9, 9, 9, 9, 9, 9, 9}
	out, _ = inj.Completion(second)
	if !bytesEqual(out, first) {
		t.Fatalf("replay returned %v, want the stale %v", out, first)
	}
	if inj.Stats().Injected[Replay] != 1 {
		t.Fatal("replay not counted")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj.Tick() || inj.Hung() || inj.NAKConfig() || !inj.TryReset() {
		t.Fatal("nil injector must inject nothing")
	}
	rec := []byte{1, 2}
	if out, extra := inj.Completion(rec); !bytesEqual(out, rec) || extra != nil {
		t.Fatal("nil injector mutated a completion")
	}
	if inj.Stats().Total() != 0 {
		t.Fatal("nil injector reported injections")
	}
}

// TestParseSpecPositionalErrors pins the hardened error messages: every
// rejection names the 1-based item position and the offending item text.
func TestParseSpecPositionalErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring the error must carry
	}{
		{"corrupt=1e-3,bogus=1", `spec item 2 ("bogus=1")`},
		{"corrupt=1e-3,truncate=2", `spec item 2 ("truncate=2")`},
		{"nak", `spec item 1 ("nak")`},
		{"drop=0.1,nak=-0.5", `spec item 2 ("nak=-0.5")`},
		{"drop=0.1,,hang=1@0", `spec item 3 ("hang=1@0")`},
		{"bits=0", `spec item 1 ("bits=0")`},
		{"burst=x", `spec item 1 ("burst=x")`},
		{"drop=nan", `spec item 1 ("drop=nan")`},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.spec)
		if err == nil {
			t.Errorf("ParseSpec(%q): want error", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseSpec(%q) error %q does not carry %q", c.spec, err, c.want)
		}
	}
}

// TestPlanStringRoundTrip: ParseSpec(p.String()) must reproduce the plan
// (modulo withDefaults normalization and the seed, which travels separately).
func TestPlanStringRoundTrip(t *testing.T) {
	plans := []Plan{
		{},
		{CorruptP: 1e-3, BurstBits: 4},
		{TruncateP: 0.25, ReplayP: 1e-4, DuplicateP: 0.5, DropP: 1},
		{NAKP: 0.125},
		{HangCount: 2, HangMTBF: 5000, HangBurst: 64},
		{HangCount: 1, HangMTBF: 1}, // burst left to defaults
		{CorruptP: 0.1, DropP: 1e-6, HangCount: 3, HangMTBF: 777, HangBurst: 9, BurstBits: 2},
	}
	for _, p := range plans {
		spec := p.String()
		got, err := ParseSpec(spec)
		if err != nil {
			t.Errorf("String() produced an unparsable spec %q: %v", spec, err)
			continue
		}
		if got.withDefaults() != p.withDefaults() {
			t.Errorf("round trip of %+v via %q = %+v", p.withDefaults(), spec, got.withDefaults())
		}
	}
	if (Plan{}).String() != "" {
		t.Errorf("null plan renders %q, want empty", (Plan{}).String())
	}
}

// TestScriptedFaults covers the deterministic one-shot injection mode the
// chaos scheduler drives: each armed class fires exactly once on the next
// applicable event, without consuming plan PRNG draws.
func TestScriptedFaults(t *testing.T) {
	rec := func() []byte { return []byte{1, 2, 3, 4, 5, 6, 7, 8} }

	inj := New(Plan{Seed: 11})
	inj.ScriptNext(Drop)
	if out, _ := inj.Completion(rec()); out != nil {
		t.Fatal("scripted drop did not drop")
	}
	if out, _ := inj.Completion(rec()); out == nil {
		t.Fatal("scripted drop fired twice")
	}
	if inj.Stats().Injected[Drop] != 1 {
		t.Fatal("scripted drop not counted")
	}

	inj = New(Plan{Seed: 11})
	inj.ScriptNext(Corrupt)
	out, _ := inj.Completion(rec())
	if bytesEqual(out, rec()) {
		t.Fatal("scripted corrupt left the record clean")
	}

	inj = New(Plan{Seed: 11})
	inj.ScriptNext(NAK)
	if !inj.NAKConfig() {
		t.Fatal("scripted NAK did not fire")
	}
	if inj.NAKConfig() {
		t.Fatal("scripted NAK fired twice")
	}

	// Queued arms of one class fire once each.
	inj = New(Plan{Seed: 11})
	inj.ScriptNext(Drop)
	inj.ScriptNext(Drop)
	drops := 0
	for i := 0; i < 3; i++ {
		if out, _ := inj.Completion(rec()); out == nil {
			drops++
		}
	}
	if drops != 2 {
		t.Fatalf("queued scripted drops fired %d times, want 2", drops)
	}

	// Scripted replay with empty history fizzles; with history it replays.
	inj = New(Plan{Seed: 11})
	inj.ScriptNext(Replay)
	first := rec()
	if out, _ := inj.Completion(first); !bytesEqual(out, first) {
		t.Fatal("scripted replay with no history should pass through")
	}
	inj.ScriptNext(Replay)
	second := []byte{9, 9, 9, 9, 9, 9, 9, 9}
	if out, _ := inj.Completion(second); !bytesEqual(out, first) {
		t.Fatalf("scripted replay returned %v, want the stale %v", out, first)
	}

	// Hang is not a ScriptNext class: arming it is a no-op.
	inj = New(Plan{Seed: 11})
	inj.ScriptNext(Hang)
	if inj.Tick() {
		t.Fatal("ScriptNext(Hang) must not wedge the device")
	}
}

// TestScriptHang: the scheduled-hang primitive wedges immediately, refuses
// resets for the burst, extends on re-arm, and clears like a plan hang.
func TestScriptHang(t *testing.T) {
	inj := New(Plan{Seed: 5})
	inj.ScriptHang(3)
	if !inj.Hung() {
		t.Fatal("ScriptHang did not wedge the device")
	}
	if inj.TryReset() {
		t.Fatal("reset succeeded inside the burst")
	}
	for i := 0; i < 3; i++ {
		inj.Tick()
	}
	if !inj.TryReset() {
		t.Fatal("reset still failing after the burst elapsed")
	}
	if inj.Hung() {
		t.Fatal("device still hung after a successful reset")
	}
	if inj.Stats().Injected[Hang] != 1 {
		t.Fatal("scripted hang not counted")
	}

	// Re-arming mid-hang extends the burst instead of double-counting.
	inj = New(Plan{Seed: 5})
	inj.ScriptHang(2)
	inj.ScriptHang(2)
	if inj.Stats().Injected[Hang] != 1 {
		t.Fatal("extension counted as a second hang")
	}
	ticks := 0
	for inj.Hung() && ticks < 10 {
		inj.Tick()
		ticks++
		if inj.TryReset() {
			break
		}
	}
	if inj.Hung() || ticks < 4 {
		t.Fatalf("extended burst cleared after %d ticks, want >= 4", ticks)
	}

	// A scripted arm consumes zero PRNG draws: after b's forced drop swallows
	// its first completion, b's second completion must apply exactly the
	// corruption a virgin same-seed injector applies to its first.
	clean := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	a := New(Plan{Seed: 42, CorruptP: 1})
	b := New(Plan{Seed: 42, CorruptP: 1})
	b.ScriptNext(Drop)
	outA, _ := a.Completion(append(clean[:0:0], clean...))
	if out, _ := b.Completion(append(clean[:0:0], clean...)); out != nil {
		t.Fatal("forced drop did not drop")
	}
	outB, _ := b.Completion(append(clean[:0:0], clean...))
	if !bytesEqual(outA, outB) {
		t.Fatalf("forced drop consumed PRNG draws: post-arm corrupt %v, virgin corrupt %v", outB, outA)
	}

	// Same for a fizzling scripted replay (empty history): no draws consumed.
	c := New(Plan{Seed: 42, CorruptP: 1})
	c.ScriptNext(Replay)
	if out, _ := c.Completion(append(clean[:0:0], clean...)); !bytesEqual(out, clean) {
		t.Fatal("fizzling replay should pass the record through clean")
	}
	outC, _ := c.Completion(append(clean[:0:0], clean...))
	if !bytesEqual(outA, outC) {
		t.Fatalf("fizzled replay consumed PRNG draws: post-arm corrupt %v, virgin corrupt %v", outC, outA)
	}
}
