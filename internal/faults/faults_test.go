package faults

import (
	"testing"
)

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("corrupt=1e-3,truncate=1e-4,drop=0.25,nak=0.5,hang=2@5000,burst=128,bits=3,dup=0.1,replay=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if p.CorruptP != 1e-3 || p.TruncateP != 1e-4 || p.DropP != 0.25 || p.NAKP != 0.5 {
		t.Fatalf("probabilities mis-parsed: %+v", p)
	}
	if p.HangCount != 2 || p.HangMTBF != 5000 || p.HangBurst != 128 || p.BurstBits != 3 {
		t.Fatalf("hang spec mis-parsed: %+v", p)
	}
	if p.DuplicateP != 0.1 || p.ReplayP != 0.2 {
		t.Fatalf("dup/replay mis-parsed: %+v", p)
	}
	for _, bad := range []string{"corrupt", "corrupt=2", "hang=5", "hang=2@0", "bogus=1", "burst=-1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): want error", bad)
		}
	}
	if _, err := ParseSpec(""); err != nil {
		t.Errorf("empty spec should be the null plan: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]byte, Stats) {
		inj := New(Plan{Seed: 7, CorruptP: 0.2, DropP: 0.1, TruncateP: 0.1})
		var log []byte
		rec := make([]byte, 16)
		for i := 0; i < 2000; i++ {
			for j := range rec {
				rec[j] = byte(i + j)
			}
			out, _ := inj.Completion(rec)
			if out == nil {
				log = append(log, 0xFF)
			} else {
				log = append(log, out...)
			}
		}
		return log, inj.Stats()
	}
	a, sa := run()
	b, sb := run()
	if !bytesEqual(a, b) {
		t.Fatal("same seed produced different fault sequences")
	}
	if sa.Total() != sb.Total() || sa.Total() == 0 {
		t.Fatalf("stats diverged or empty: %d vs %d", sa.Total(), sb.Total())
	}
	c, _ := func() ([]byte, Stats) {
		inj := New(Plan{Seed: 8, CorruptP: 0.2, DropP: 0.1, TruncateP: 0.1})
		var log []byte
		rec := make([]byte, 16)
		for i := 0; i < 2000; i++ {
			for j := range rec {
				rec[j] = byte(i + j)
			}
			out, _ := inj.Completion(rec)
			if out == nil {
				log = append(log, 0xFF)
			} else {
				log = append(log, out...)
			}
		}
		return log, inj.Stats()
	}()
	if bytesEqual(a, c) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestHangScheduleAndReset(t *testing.T) {
	inj := New(Plan{Seed: 1, HangCount: 2, HangMTBF: 100, HangBurst: 10})
	hangs := 0
	for op := 1; op <= 400; op++ {
		wasHung := inj.Hung()
		hung := inj.Tick()
		if hung && !wasHung {
			hangs++
			// Resets must fail until the burst elapses.
			if inj.TryReset() {
				t.Fatalf("op %d: reset succeeded immediately after hang onset", op)
			}
			// Burn the burst (each tick is one wedged device op).
			for inj.Tick() && inj.hangLeft > 0 {
			}
			if !inj.TryReset() {
				t.Fatalf("op %d: reset still failing after burst elapsed", op)
			}
			if inj.Hung() {
				t.Fatal("device still hung after successful reset")
			}
		}
	}
	if hangs != 2 {
		t.Fatalf("got %d hangs, want 2", hangs)
	}
	st := inj.Stats()
	if st.Injected[Hang] != 2 || st.Resets != 2 || st.ResetNAKs != 2 {
		t.Fatalf("hang accounting off: %+v", st)
	}
}

func TestCompletionClasses(t *testing.T) {
	// Probability-1 classes must fire every time and be counted.
	rec := func() []byte { return []byte{1, 2, 3, 4, 5, 6, 7, 8} }

	inj := New(Plan{Seed: 3, DropP: 1})
	if out, _ := inj.Completion(rec()); out != nil {
		t.Fatal("drop plan returned a record")
	}
	if inj.Stats().Injected[Drop] != 1 {
		t.Fatal("drop not counted")
	}

	inj = New(Plan{Seed: 3, CorruptP: 1})
	r := rec()
	out, _ := inj.Completion(r)
	if bytesEqual(out, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatal("corrupt plan left record unchanged")
	}
	if inj.Stats().Injected[Corrupt] != 1 {
		t.Fatal("corrupt not counted")
	}

	inj = New(Plan{Seed: 3, DuplicateP: 1})
	out, extra := inj.Completion(rec())
	if out == nil || extra == nil || !bytesEqual(out, extra) {
		t.Fatal("duplicate plan did not return two identical records")
	}

	// Replay needs history: the first completion is clean (nothing to
	// replay), later ones must return an older record.
	inj = New(Plan{Seed: 3, ReplayP: 1})
	first := rec()
	if out, _ := inj.Completion(first); !bytesEqual(out, first) {
		t.Fatal("replay with empty history should pass through")
	}
	second := []byte{9, 9, 9, 9, 9, 9, 9, 9}
	out, _ = inj.Completion(second)
	if !bytesEqual(out, first) {
		t.Fatalf("replay returned %v, want the stale %v", out, first)
	}
	if inj.Stats().Injected[Replay] != 1 {
		t.Fatal("replay not counted")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj.Tick() || inj.Hung() || inj.NAKConfig() || !inj.TryReset() {
		t.Fatal("nil injector must inject nothing")
	}
	rec := []byte{1, 2}
	if out, extra := inj.Completion(rec); !bytesEqual(out, rec) || extra != nil {
		t.Fatal("nil injector mutated a completion")
	}
	if inj.Stats().Total() != 0 {
		t.Fatal("nil injector reported injections")
	}
}
