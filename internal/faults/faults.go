// Package faults is a deterministic, seedable fault-injection layer for the
// simulated NIC. Real devices violate their declared contracts — completion
// records arrive bit-flipped, DMA writes land short, stale records are
// replayed from a previous ring wrap, completions are duplicated or silently
// lost, register writes are NAKed, and firmware wedges outright. The
// injector models each of these classes with an independent per-event
// probability (plus a scheduled hang train with configurable MTBF and burst
// length), drawn from a seeded xorshift generator so every run is exactly
// reproducible. nicsim consults the injector on its DMA/completion and
// control-channel paths; the hardened driver facade must then detect and
// survive whatever the injector emits.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"opendesc/internal/obs"
	"opendesc/internal/obs/flight"
)

// Class enumerates the injected fault classes.
type Class int

const (
	// Corrupt flips 1..BurstBits random bits anywhere in the completion
	// record (a DMA/PCIe payload corruption).
	Corrupt Class = iota
	// Truncate cuts the completion DMA short: only a prefix of the record is
	// written, the tail stays zero (a torn DMA write).
	Truncate
	// Replay delivers a stale completion captured earlier in the run instead
	// of the fresh one (a stale-generation / stale-cacheline read).
	Replay
	// Duplicate publishes the same completion record twice.
	Duplicate
	// Drop accepts the packet but never writes its completion (a lost
	// completion doorbell — the host-visible desync case).
	Drop
	// NAK fails a control-channel register-write burst (ApplyConfig).
	NAK
	// Hang wedges the whole device: RX, TX and control channel all fail
	// until the burst elapses and the host issues a successful reset.
	Hang
)

var classNames = map[Class]string{
	Corrupt: "corrupt", Truncate: "truncate", Replay: "replay",
	Duplicate: "duplicate", Drop: "drop", NAK: "nak", Hang: "hang",
}

func (c Class) String() string { return classNames[c] }

// Classes lists every fault class in display order.
func Classes() []Class {
	return []Class{Corrupt, Truncate, Replay, Duplicate, Drop, NAK, Hang}
}

// Plan is a fault-injection specification. Probabilities are per event
// (completion serialized, register burst written); zero disables the class.
type Plan struct {
	Seed uint64

	CorruptP   float64 // per-completion bit-flip probability
	TruncateP  float64 // per-completion short-DMA probability
	ReplayP    float64 // per-completion stale-replay probability
	DuplicateP float64 // per-completion duplication probability
	DropP      float64 // per-completion loss probability
	NAKP       float64 // per-ApplyConfig register-write NAK probability

	// BurstBits is how many bits a single Corrupt event may flip (1..n,
	// uniform; default 1).
	BurstBits int

	// HangCount device hangs are scheduled, one every HangMTBF device
	// operations; each wedges the device for HangBurst operations, after
	// which the next reset succeeds. Zero HangCount disables hangs.
	HangCount int
	HangMTBF  int
	HangBurst int
}

func (p Plan) withDefaults() Plan {
	if p.BurstBits <= 0 {
		p.BurstBits = 1
	}
	if p.HangCount > 0 {
		if p.HangMTBF <= 0 {
			p.HangMTBF = 4096
		}
		if p.HangBurst <= 0 {
			p.HangBurst = 256
		}
	}
	return p
}

// ParseSpec parses the CLI fault specification, a comma-separated list of
// class=value items, e.g.
//
//	corrupt=1e-3,truncate=1e-4,replay=1e-4,duplicate=1e-4,drop=1e-4,nak=0.5,hang=2@5000,burst=256,bits=2
//
// hang=N@M schedules N hangs with an MTBF of M device operations; burst sets
// the hang length in operations and bits the per-corruption flip burst.
// Unknown keys and out-of-range values are rejected with the 1-based item
// position, so a long machine-generated spec (a shrunk chaos reproducer)
// pinpoints its own bad entry.
func ParseSpec(spec string) (Plan, error) {
	var p Plan
	for pos, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if err := p.parseItem(item); err != nil {
			return Plan{}, fmt.Errorf("faults: spec item %d (%q): %w", pos+1, item, err)
		}
	}
	return p, nil
}

// parseItem folds one key=value spec item into the plan.
func (p *Plan) parseItem(item string) error {
	k, v, ok := strings.Cut(item, "=")
	if !ok {
		return fmt.Errorf("not key=value")
	}
	prob := func() (float64, error) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || !(f >= 0 && f <= 1) { // the negated form also rejects NaN
			return 0, fmt.Errorf("%s=%q: want a probability in [0,1]", k, v)
		}
		return f, nil
	}
	var err error
	switch k {
	case "corrupt":
		p.CorruptP, err = prob()
	case "truncate":
		p.TruncateP, err = prob()
	case "replay":
		p.ReplayP, err = prob()
	case "duplicate", "dup":
		p.DuplicateP, err = prob()
	case "drop":
		p.DropP, err = prob()
	case "nak":
		p.NAKP, err = prob()
	case "hang":
		n, m, ok := strings.Cut(v, "@")
		if !ok {
			return fmt.Errorf("hang=%q: want count@mtbf", v)
		}
		if p.HangCount, err = strconv.Atoi(n); err == nil {
			p.HangMTBF, err = strconv.Atoi(m)
		}
		if err != nil || p.HangCount < 0 || p.HangMTBF <= 0 {
			return fmt.Errorf("hang=%q: want count@mtbf with mtbf > 0", v)
		}
		return nil
	case "burst":
		if p.HangBurst, err = strconv.Atoi(v); err != nil || p.HangBurst <= 0 {
			return fmt.Errorf("burst=%q: want a positive op count", v)
		}
		return nil
	case "bits":
		if p.BurstBits, err = strconv.Atoi(v); err != nil || p.BurstBits <= 0 {
			return fmt.Errorf("bits=%q: want a positive bit count", v)
		}
		return nil
	default:
		return fmt.Errorf("unknown class %q (have corrupt, truncate, replay, duplicate, drop, nak, hang, burst, bits)", k)
	}
	return err
}

// String renders the plan back into ParseSpec's grammar, so a programmatic
// plan (e.g. a shrunk chaos reproducer) prints as a valid -faults argument.
// Fields at their zero/default value are omitted; ParseSpec(p.String())
// round-trips to an equivalent plan (the seed travels separately, via the
// -seed flag). A no-fault plan renders as the empty spec.
func (p Plan) String() string {
	var parts []string
	add := func(k string, f float64) {
		if f > 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(f, 'g', -1, 64))
		}
	}
	add("corrupt", p.CorruptP)
	add("truncate", p.TruncateP)
	add("replay", p.ReplayP)
	add("duplicate", p.DuplicateP)
	add("drop", p.DropP)
	add("nak", p.NAKP)
	if p.HangCount > 0 {
		mtbf := p.HangMTBF
		if mtbf <= 0 {
			mtbf = 4096 // the withDefaults value, kept explicit in the spec
		}
		parts = append(parts, fmt.Sprintf("hang=%d@%d", p.HangCount, mtbf))
		if p.HangBurst > 0 {
			parts = append(parts, fmt.Sprintf("burst=%d", p.HangBurst))
		}
	}
	if p.BurstBits > 1 {
		parts = append(parts, fmt.Sprintf("bits=%d", p.BurstBits))
	}
	return strings.Join(parts, ",")
}

// replayDepth is how many past completions the injector retains as replay
// candidates (the stale records a misbehaving device might re-deliver).
const replayDepth = 8

// Injector draws fault decisions from a seeded PRNG. The decision methods
// (Tick, Completion, NAKConfig, TryReset) must be called from the device
// datapath goroutine only; the Stats snapshot is safe from any goroutine.
type Injector struct {
	plan Plan
	rng  uint64

	// ops is the device-operation clock; atomic only so a stats scraper can
	// read it while the datapath advances it.
	ops       atomic.Uint64
	hung      bool
	hangLeft  int // operations until the wedge clears enough for a reset
	hangsDone int
	nextHang  uint64

	// history holds copies of recently serialized completions (replay pool).
	history [][]byte
	histPos int

	// forced counts armed one-shot scripted faults per class (ScriptNext):
	// the deterministic injection mode the chaos scheduler and its shrinker
	// drive, where each fault is an explicit schedule event instead of a
	// PRNG draw. Consumed before any probabilistic decision.
	forced [Hang + 1]int

	injected [Hang + 1]obs.Counter
	resetNAK obs.Counter
	resets   obs.Counter

	// fq, when attached, receives an event per injected fault plus hang
	// start/clear markers; a hang recovery also triggers a postmortem
	// snapshot on the owning recorder.
	fq *flight.Queue
}

// AttachFlight wires the injector's flight-recorder events to q (nil
// detaches). nicsim propagates its own queue automatically on InjectFaults.
func (inj *Injector) AttachFlight(q *flight.Queue) { inj.fq = q }

// New builds an injector for a plan. A zero-valued plan injects nothing.
func New(plan Plan) *Injector {
	plan = plan.withDefaults()
	inj := &Injector{plan: plan, rng: plan.Seed}
	if inj.rng == 0 {
		inj.rng = 0x9e3779b97f4a7c15 // xorshift must not start at 0
	}
	if plan.HangCount > 0 {
		inj.nextHang = uint64(plan.HangMTBF)
	}
	return inj
}

// Parse is ParseSpec + New with the given seed.
func Parse(spec string, seed uint64) (*Injector, error) {
	plan, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	plan.Seed = seed
	return New(plan), nil
}

// Plan returns the injector's (defaulted) plan.
func (inj *Injector) Plan() Plan { return inj.plan }

// next is xorshift64*, deterministic from the seed.
func (inj *Injector) next() uint64 {
	x := inj.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	inj.rng = x
	return x * 0x2545F4914F6CDD1D
}

// hit draws a Bernoulli event with probability p.
func (inj *Injector) hit(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(inj.next()>>11)/float64(1<<53) < p
}

// Tick advances the hang clock by one device operation and reports whether
// the device is wedged for this operation. Every device entry point (RX,
// TX, control channel, reset) counts as one operation.
func (inj *Injector) Tick() (hung bool) {
	if inj == nil {
		return false
	}
	ops := inj.ops.Add(1)
	if inj.hung {
		if inj.hangLeft > 0 {
			inj.hangLeft--
		}
		return true
	}
	if inj.plan.HangCount > 0 && inj.hangsDone < inj.plan.HangCount && ops >= inj.nextHang {
		inj.hung = true
		inj.hangLeft = inj.plan.HangBurst
		inj.hangsDone++
		inj.nextHang = ops + uint64(inj.plan.HangMTBF)
		inj.injected[Hang].Inc()
		inj.fq.Record(flight.EvHangStart, uint32(inj.hangsDone), uint64(inj.plan.HangBurst), 0)
		return true
	}
	return false
}

// Hung reports the current wedge state without advancing the clock.
func (inj *Injector) Hung() bool { return inj != nil && inj.hung }

// TryReset models a host-issued device reset: while the hang burst has not
// elapsed the device stays unresponsive and the reset fails; afterwards the
// reset clears the wedge. Resets on a healthy device always succeed.
func (inj *Injector) TryReset() bool {
	if inj == nil {
		return true
	}
	inj.ops.Add(1)
	if inj.hung && inj.hangLeft > 0 {
		inj.resetNAK.Inc()
		return false
	}
	wasHung := inj.hung
	inj.hung = false
	inj.resets.Inc()
	if wasHung {
		// The hang is over: mark it and capture the flight buffer while the
		// wedge window is still in view.
		inj.fq.Record(flight.EvHangClear, uint32(inj.hangsDone), uint64(inj.plan.HangBurst), 0)
		if rec := inj.fq.Recorder(); rec != nil {
			rec.Postmortem("hang-recovery")
		}
	}
	return true
}

// ScriptNext arms one scripted fault of class c: the next applicable event
// (completion for the record classes, register-write burst for NAK) injects
// it deterministically, regardless of the plan's probabilities. Multiple
// arms of the same class queue up. Hang is not a per-event class — use
// ScriptHang. A scripted decision consumes no PRNG draws: the event it fires
// on is skipped entirely, and the probabilistic stream resumes on the next
// event exactly where it left off.
func (inj *Injector) ScriptNext(c Class) {
	if inj == nil || c < Corrupt || c > NAK {
		return
	}
	inj.forced[c]++
}

// ScriptHang wedges the device immediately for burst operations — the
// scheduled-hang primitive of the chaos harness. While a hang is already
// running the burst is extended instead. The wedge clears like a plan hang:
// the burst must elapse (Tick) and a reset must succeed (TryReset).
func (inj *Injector) ScriptHang(burst int) {
	if inj == nil {
		return
	}
	if burst <= 0 {
		burst = 1
	}
	if inj.hung {
		inj.hangLeft += burst
		return
	}
	inj.hung = true
	inj.hangLeft = burst
	inj.injected[Hang].Inc()
	inj.fq.Record(flight.EvHangStart, uint32(inj.hangsDone), uint64(burst), 0)
}

// takeForced consumes one armed scripted fault of class c.
func (inj *Injector) takeForced(c Class) bool {
	if inj.forced[c] > 0 {
		inj.forced[c]--
		return true
	}
	return false
}

// NAKConfig reports whether this control-channel register-write burst is
// NAKed. The burst fails atomically, before any register is written.
func (inj *Injector) NAKConfig() bool {
	if inj == nil {
		return false
	}
	if inj.takeForced(NAK) {
		inj.injected[NAK].Inc()
		return true
	}
	if inj.hit(inj.plan.NAKP) {
		inj.injected[NAK].Inc()
		return true
	}
	return false
}

// Completion passes one freshly serialized completion record through the
// injector. rec is mutated in place for corruption classes; the returned
// slice is what the device should DMA (nil for a dropped completion), and
// extra, when non-nil, is a second record to publish right after (a
// duplicate). The injector snapshots clean records into its replay pool.
func (inj *Injector) Completion(rec []byte) (out, extra []byte) {
	if inj == nil {
		return rec, nil
	}
	switch {
	case inj.takeForced(Drop) || inj.hit(inj.plan.DropP):
		inj.injected[Drop].Inc()
		inj.noteFault(Drop)
		return nil, nil
	case inj.takeForced(Replay) || inj.hit(inj.plan.ReplayP):
		// A scripted replay with an empty history fizzles silently: there is
		// no stale record a device could re-deliver yet.
		if stale := inj.stale(rec); stale != nil {
			inj.injected[Replay].Inc()
			inj.noteFault(Replay)
			return stale, nil
		}
	case inj.takeForced(Duplicate) || inj.hit(inj.plan.DuplicateP):
		inj.injected[Duplicate].Inc()
		inj.noteFault(Duplicate)
		inj.remember(rec)
		return rec, rec
	case inj.takeForced(Truncate) || inj.hit(inj.plan.TruncateP):
		// A torn DMA: keep a strict prefix, zero the tail. Only counted when
		// the mutation is visible (a truncated all-zero tail is a no-op).
		cut := int(inj.next() % uint64(len(rec)))
		changed := false
		for i := cut; i < len(rec); i++ {
			if rec[i] != 0 {
				rec[i] = 0
				changed = true
			}
		}
		if changed {
			inj.injected[Truncate].Inc()
			inj.noteFault(Truncate)
			return rec, nil
		}
	case inj.takeForced(Corrupt) || inj.hit(inj.plan.CorruptP):
		flips := 1
		if inj.plan.BurstBits > 1 {
			flips += int(inj.next() % uint64(inj.plan.BurstBits))
		}
		// Track which bits the burst touches; a bit flipped an even number of
		// times cancels out, and a burst with no net change is not an
		// observable fault (not counted, record stays clean).
		before := append([]byte(nil), rec...)
		for i := 0; i < flips; i++ {
			bit := inj.next() % uint64(len(rec)*8)
			rec[bit/8] ^= 1 << (bit % 8)
		}
		if !bytesEqual(rec, before) {
			inj.injected[Corrupt].Inc()
			inj.noteFault(Corrupt)
			return rec, nil
		}
	}
	inj.remember(rec)
	return rec, nil
}

// noteFault records an injected fault in the flight stream, tagged with the
// device-operation clock so it aligns with the surrounding DMA events.
func (inj *Injector) noteFault(c Class) {
	inj.fq.Record(flight.EvFault, uint32(inj.ops.Load()), uint64(c), 0)
}

// remember snapshots a clean record into the replay pool.
func (inj *Injector) remember(rec []byte) {
	cp := append([]byte(nil), rec...)
	if len(inj.history) < replayDepth {
		inj.history = append(inj.history, cp)
	} else {
		inj.history[inj.histPos] = cp
		inj.histPos = (inj.histPos + 1) % replayDepth
	}
}

// stale picks a replay candidate that differs from the fresh record (a
// byte-identical replay would be invisible, hence not a fault).
func (inj *Injector) stale(fresh []byte) []byte {
	if len(inj.history) == 0 {
		return nil
	}
	start := int(inj.next() % uint64(len(inj.history)))
	for i := 0; i < len(inj.history); i++ {
		cand := inj.history[(start+i)%len(inj.history)]
		if !bytesEqual(cand, fresh) {
			return cand
		}
	}
	return nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Stats is a snapshot of the injected-fault counters.
type Stats struct {
	// Injected counts effective injections per class (mutations that did not
	// change the record are not counted).
	Injected map[Class]uint64
	// ResetNAKs counts reset attempts refused while the device was wedged;
	// Resets counts resets that took effect.
	ResetNAKs uint64
	Resets    uint64
	// Ops is the device-operation clock.
	Ops uint64
}

// Total sums all injected events.
func (s Stats) Total() uint64 {
	var n uint64
	for _, v := range s.Injected {
		n += v
	}
	return n
}

// String renders "class=n" pairs in display order.
func (s Stats) String() string {
	var parts []string
	for _, c := range Classes() {
		if n := s.Injected[c]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c, n))
		}
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// Stats snapshots the injected counters. Safe to call concurrently with the
// datapath (counters are atomic; the PRNG itself is datapath-owned).
func (inj *Injector) Stats() Stats {
	st := Stats{Injected: make(map[Class]uint64)}
	if inj == nil {
		return st
	}
	for c := Corrupt; c <= Hang; c++ {
		if n := inj.injected[c].Load(); n > 0 {
			st.Injected[c] = n
		}
	}
	st.ResetNAKs = inj.resetNAK.Load()
	st.Resets = inj.resets.Load()
	st.Ops = inj.ops.Load()
	return st
}

// RegisterMetrics exposes the per-class injected counters on an obs
// registry (the device under test should be observable too).
func (inj *Injector) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	for c := Corrupt; c <= Hang; c++ {
		l := append(append([]obs.Label{}, labels...), obs.L("class", c.String()))
		reg.AttachCounter("opendesc_faults_injected_total", "injected faults per class", &inj.injected[c], l...)
	}
	reg.AttachCounter("opendesc_faults_reset_naks_total", "device resets refused while wedged", &inj.resetNAK, labels...)
	reg.AttachCounter("opendesc_faults_resets_total", "device resets that took effect", &inj.resets, labels...)
}
