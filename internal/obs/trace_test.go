package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestFmtDurBoundaries pins the rounding behavior at the tier boundaries:
// sub-µs durations must not collapse to "0µs", and [999.5µs, 1ms) must
// promote to the ms tier instead of truncating to "999µs".
func TestFmtDurBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0ns"},
		{1 * time.Nanosecond, "1ns"},
		{999 * time.Nanosecond, "999ns"},
		{1 * time.Microsecond, "1µs"},
		{1499 * time.Nanosecond, "1µs"},
		{1500 * time.Nanosecond, "2µs"},
		{999*time.Microsecond + 499*time.Nanosecond, "999µs"},
		{999*time.Microsecond + 500*time.Nanosecond, "1.000ms"},
		{999999 * time.Nanosecond, "1.000ms"},
		{1 * time.Millisecond, "1.000ms"},
		{1500 * time.Microsecond, "1.500ms"},
		{999 * time.Millisecond, "999.000ms"},
		{999*time.Millisecond + 999*time.Microsecond + 500*time.Nanosecond, "1.000s"},
		{time.Second, "1.000s"},
		{2500 * time.Millisecond, "2.500s"},
	}
	for _, c := range cases {
		if got := fmtDur(c.d); got != c.want {
			t.Errorf("fmtDur(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// fakeTraceClock substitutes a manually advanced timestamp source for
// traceNow and returns an advance function plus a restore for cleanup. Trace
// tests must not sleep: real 2ms naps made this file flaky under load and
// slow everywhere.
func fakeTraceClock(t *testing.T) func(time.Duration) {
	t.Helper()
	now := time.Unix(1700000000, 0)
	orig := traceNow
	traceNow = func() time.Time { return now }
	t.Cleanup(func() { traceNow = orig })
	return func(d time.Duration) { now = now.Add(d) }
}

// TestTraceReportOpenSpan is the regression test for the open-span bug:
// Report() used to print zero duration and 0.0% share for spans never
// End()ed; it must now show their elapsed time tagged "(open)".
func TestTraceReportOpenSpan(t *testing.T) {
	advance := fakeTraceClock(t)
	tr := NewTrace("open demo")
	done := tr.Start("finished")
	advance(2 * time.Millisecond)
	done.End()
	open := tr.Start("unfinished")
	advance(2 * time.Millisecond)

	rep := tr.Report()
	if !strings.Contains(rep, "(open)") {
		t.Fatalf("report does not mark the open span:\n%s", rep)
	}
	// On the fake clock both spans took exactly 2ms, so the open span must
	// report exactly 2.000ms and an exact 50% share.
	for _, line := range strings.Split(rep, "\n") {
		if !strings.Contains(line, "unfinished") {
			continue
		}
		if !strings.Contains(line, "2.000ms") || !strings.Contains(line, "50.0%") {
			t.Errorf("open span line = %q, want exactly 2.000ms at 50.0%%", line)
		}
	}
	if open.Dur != 0 || open.done {
		t.Error("Report must not mutate the open span")
	}
	// Ending it later still works and clears the marker.
	open.End()
	if rep := tr.Report(); strings.Contains(rep, "(open)") {
		t.Errorf("span ended but still marked open:\n%s", rep)
	}
}

// TestHandlerExtraRoutesAndPprof covers the Handle() extension point and the
// pprof wiring on the stats mux.
func TestHandlerExtraRoutesAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "").Inc()
	reg.Handle("/debug/flight", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "flight here")
	}))
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/debug/flight"); code != http.StatusOK || body != "flight here" {
		t.Errorf("extra route: %d %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: %d", code)
	}
	if code, body := get("/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Errorf("pprof cmdline: %d", code)
	}
	if code, body := get("/"); code != http.StatusOK || !strings.Contains(body, "/debug/flight") {
		t.Errorf("index must list extras: %d %q", code, body)
	}
	// Re-registering a pattern replaces the handler on later muxes.
	reg.Handle("/debug/flight", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "v2")
	}))
	srv2 := httptest.NewServer(reg.Handler())
	defer srv2.Close()
	resp, err := http.Get(srv2.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if b, _ := io.ReadAll(resp.Body); string(b) != "v2" {
		t.Errorf("replaced handler body = %q", b)
	}
}
