//go:build !flight_off

package flight

import "time"

// Compiled reports whether recording is compiled in (false under the
// flight_off build tag).
const Compiled = true

// Now returns the current event timestamp: nanoseconds since the recorder
// epoch, or 0 when the queue is nil or recording is off. Callers that emit
// several events for one operation should read Now once and use RecordT.
func (q *Queue) Now() uint64 {
	if q == nil || !q.rec.enabled.Load() {
		return 0
	}
	return uint64(time.Since(q.rec.epoch))
}

// Record appends an event stamped with the current time. Nil queues and
// disabled recorders make it a no-op, so call sites need no guards.
func (q *Queue) Record(c Code, seq uint32, a0, a1 uint64) {
	if q == nil || !q.rec.enabled.Load() {
		return
	}
	q.record(uint64(time.Since(q.rec.epoch)), c, seq, a0, a1)
}

// RecordT appends an event with a caller-supplied timestamp (from Now),
// saving a clock read when one operation emits several events. A zero ts
// means recording was off when the caller sampled the clock; the event is
// skipped to keep the two paths consistent.
func (q *Queue) RecordT(ts uint64, c Code, seq uint32, a0, a1 uint64) {
	if q == nil || ts == 0 || !q.rec.enabled.Load() {
		return
	}
	q.record(ts, c, seq, a0, a1)
}
