//go:build !flight_off

// These tests exercise live recording and are compiled out together with it
// under -tags flight_off (see record_off_test.go for the no-op contract).
package flight

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestRecordSnapshotDecode(t *testing.T) {
	r := NewRecorder(Config{Size: 64})
	q := r.Queue("q0")
	q.Record(EvDMAEmit, 7, 16, 2)
	q.Record(EvDeliver, 7, 100, 250)
	snap := r.Snapshot()
	if len(snap.Queues) != 1 || snap.Queues[0].Name != "q0" {
		t.Fatalf("snapshot queues = %+v", snap.Queues)
	}
	evs := snap.Queues[0].Events
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Code != EvDMAEmit || evs[0].Seq != 7 || evs[0].Arg0 != 16 || evs[0].Arg1 != 2 {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[1].Code != EvDeliver || evs[1].Arg1 != 250 {
		t.Errorf("event 1 = %+v", evs[1])
	}
	if evs[1].TS < evs[0].TS {
		t.Errorf("timestamps not monotone: %d then %d", evs[0].TS, evs[1].TS)
	}
	if evs[0].Queue != q.ID() {
		t.Errorf("queue id = %d, want %d", evs[0].Queue, q.ID())
	}
}

func TestQueueIdentityAndReuse(t *testing.T) {
	r := NewRecorder(Config{})
	a := r.Queue("a")
	b := r.Queue("b")
	if a == b || a.ID() == b.ID() {
		t.Fatalf("distinct names must give distinct queues: %v %v", a.ID(), b.ID())
	}
	if r.Queue("a") != a {
		t.Error("Queue must be idempotent per name")
	}
	if a.Recorder() != r {
		t.Error("Recorder backlink broken")
	}
}

func TestNilQueueIsInert(t *testing.T) {
	var q *Queue
	q.Record(EvDeliver, 1, 2, 3) // must not panic
	q.RecordT(5, EvDeliver, 1, 2, 3)
	if q.Now() != 0 {
		t.Error("nil queue Now() must be 0")
	}
	if q.Dropped() != 0 || q.Recorder() != nil {
		t.Error("nil queue accessors must be zero")
	}
}

func TestDisabledRecordsNothing(t *testing.T) {
	r := NewRecorder(Config{Size: 64})
	q := r.Queue("q0")
	r.SetEnabled(false)
	if q.Now() != 0 {
		t.Error("disabled Now() must be 0")
	}
	q.Record(EvDeliver, 1, 0, 0)
	q.RecordT(123, EvDeliver, 1, 0, 0)
	if n := r.Snapshot().Events(); n != 0 {
		t.Fatalf("disabled recorder captured %d events", n)
	}
	r.SetEnabled(true)
	q.Record(EvDeliver, 2, 0, 0)
	if n := r.Snapshot().Events(); n != 1 {
		t.Fatalf("re-enabled recorder captured %d events, want 1", n)
	}
}

func TestWrapAroundKeepsNewest(t *testing.T) {
	r := NewRecorder(Config{Size: 8})
	q := r.Queue("q0")
	for i := 0; i < 100; i++ {
		q.Record(EvRingPush, uint32(i), uint64(i), 0)
	}
	evs := r.Snapshot().Queues[0].Events
	if len(evs) != 8 {
		t.Fatalf("got %d events after wrap, want ring size 8", len(evs))
	}
	for i, ev := range evs {
		if want := uint32(92 + i); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d (oldest-first tail)", i, ev.Seq, want)
		}
	}
	// A limited snapshot trims further.
	if got := len(q.snapshot(3)); got != 3 {
		t.Errorf("limited snapshot kept %d, want 3", got)
	}
}

func TestSizeRoundsUpToPowerOfTwo(t *testing.T) {
	r := NewRecorder(Config{Size: 100})
	q := r.Queue("q")
	for i := 0; i < 1000; i++ {
		q.Record(EvRingPush, uint32(i), 0, 0)
	}
	if got := len(r.Snapshot().Queues[0].Events); got != 128 {
		t.Fatalf("ring holds %d events, want 128 (100 rounded up)", got)
	}
}

// TestConcurrentWritersAndSnapshots is the -race acceptance test: several
// writers hammer one queue through many wrap-arounds while a reader
// continuously snapshots. Every decoded event must be internally consistent
// (arg0 must equal the checksum the writer computed from its id and seq),
// proving the sequence validation discards torn slots.
func TestConcurrentWritersAndSnapshots(t *testing.T) {
	r := NewRecorder(Config{Size: 64}) // tiny ring to force constant wrapping
	q := r.Queue("q0")
	const writers = 4
	const perWriter = 20000
	check := func(writer, seq uint64) uint64 { return writer*1_000_003 + seq*7919 }

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // reader: snapshot continuously, validate every event
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range q.snapshot(0) {
				if ev.Code != EvDeliver || ev.Arg0 != check(ev.Arg1, uint64(ev.Seq)) {
					t.Errorf("torn event surfaced: %+v", ev)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w uint64) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq := uint64(i)
				q.Record(EvDeliver, uint32(seq), check(w, seq), w)
			}
		}(uint64(w))
	}
	wg.Wait()
	close(stop)
	<-readerDone
	// All tickets were issued; drops (lap protection) are permitted but must
	// be rare and accounted.
	if q.wpos.Load() != writers*perWriter {
		t.Fatalf("wpos = %d, want %d", q.wpos.Load(), writers*perWriter)
	}
	t.Logf("lap-protection drops: %d of %d", q.Dropped(), writers*perWriter)
	// Final quiescent snapshot must decode a full ring of valid events.
	evs := q.snapshot(0)
	if len(evs)+int(q.Dropped()) < 64 && len(evs) < 60 {
		t.Errorf("quiescent snapshot decoded only %d events", len(evs))
	}
	for _, ev := range evs {
		if ev.Arg0 != check(ev.Arg1, uint64(ev.Seq)) {
			t.Errorf("quiescent torn event: %+v", ev)
		}
	}
}

func TestPackName(t *testing.T) {
	for _, s := range []string{"", "rss", "pkt_len", "exactly8", "truncated-long-name"} {
		got := UnpackName(PackName(s))
		want := s
		if len(want) > 8 {
			want = want[:8]
		}
		if got != want {
			t.Errorf("round trip %q = %q, want %q", s, got, want)
		}
	}
}

func TestDumpRoundTrip(t *testing.T) {
	r := NewRecorder(Config{Size: 64})
	q0 := r.Queue("rx")
	q1 := r.Queue("ctl")
	q0.Record(EvDMAEmit, 1, 16, 0)
	q0.Record(EvDeliver, 1, 900, 1800)
	q1.Record(EvDegrade, 0, 8, 0)
	snap := r.Snapshot()

	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Queues) != 2 || back.Queues[0].Name != "rx" || back.Queues[1].Name != "ctl" {
		t.Fatalf("round trip queues = %+v", back.Queues)
	}
	if len(back.Queues[0].Events) != 2 || back.Queues[0].Events[1] != snap.Queues[0].Events[1] {
		t.Errorf("round trip events drifted: %+v vs %+v",
			back.Queues[0].Events, snap.Queues[0].Events)
	}
	if back.Epoch.UnixNano() != snap.Epoch.UnixNano() {
		t.Errorf("epoch drifted: %v vs %v", back.Epoch, snap.Epoch)
	}

	// Corrupt inputs fail cleanly.
	if _, err := ReadDump(bytes.NewReader([]byte("NOTADUMP"))); err == nil {
		t.Error("bad magic must fail")
	}
	var short bytes.Buffer
	snap.WriteTo(&short)
	trunc := short.Bytes()[:short.Len()-10]
	if _, err := ReadDump(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated dump must fail")
	}
}

func TestPostmortem(t *testing.T) {
	dir := t.TempDir()
	r := NewRecorder(Config{Size: 64, PostmortemEvents: 4, DumpDir: dir})
	q := r.Queue("q0")
	for i := 0; i < 20; i++ {
		q.Record(EvRingPush, uint32(i), 0, 0)
	}
	path := r.Postmortem("watchdog-degrade")
	if path == "" {
		t.Fatal("postmortem with DumpDir set must write a file")
	}
	reason, text, ok := r.LastPostmortem()
	if !ok || reason != "watchdog-degrade" {
		t.Fatalf("LastPostmortem = %q %v", reason, ok)
	}
	if !strings.Contains(text, "watchdog-degrade") || !strings.Contains(text, "ring_push") {
		t.Errorf("postmortem text missing content:\n%s", text)
	}
	snap := r.LastSnapshot()
	if snap == nil || len(snap.Queues[0].Events) != 4 {
		t.Fatalf("postmortem kept %d events, want last 4", len(snap.Queues[0].Events))
	}
	if snap.Queues[0].Events[0].Seq != 16 {
		t.Errorf("postmortem tail starts at seq %d, want 16", snap.Queues[0].Events[0].Seq)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := ReadDump(f)
	if err != nil {
		t.Fatalf("dump file does not round-trip: %v", err)
	}
	if back.Reason != "watchdog-degrade" || back.Events() != 4 {
		t.Errorf("dump file = reason %q events %d", back.Reason, back.Events())
	}
	if r.Postmortems() != 1 || len(r.DumpFiles()) != 1 {
		t.Errorf("postmortem accounting: count=%d files=%v", r.Postmortems(), r.DumpFiles())
	}
	if base := filepath.Base(path); base != "flight-001-watchdog-degrade.odfl" {
		t.Errorf("dump file name = %q", base)
	}
}

func TestChromeTraceWellFormed(t *testing.T) {
	r := NewRecorder(Config{Size: 64})
	q := r.Queue("q0")
	q.Record(EvDMAEmit, 1, 16, 0)
	q.Record(EvReadHW, 1, PackName("rss"), 0)
	q.Record(EvDeliver, 1, 500, 1500)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf.Bytes())
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	// thread_name metadata + 2 instants + 1 span
	if len(tr.TraceEvents) != 4 {
		t.Fatalf("got %d trace events, want 4:\n%s", len(tr.TraceEvents), buf.Bytes())
	}
	var sawSpan, sawName bool
	for _, ev := range tr.TraceEvents {
		switch ev["ph"] {
		case "X":
			sawSpan = true
			if ev["dur"].(float64) != 1.5 { // 1500 ns = 1.5 µs
				t.Errorf("span dur = %v µs, want 1.5", ev["dur"])
			}
		case "M":
			sawName = true
		}
	}
	if !sawSpan || !sawName {
		t.Errorf("trace missing span (%v) or thread metadata (%v)", sawSpan, sawName)
	}
}

func TestFormatReadable(t *testing.T) {
	r := NewRecorder(Config{Size: 64})
	q := r.Queue("q0")
	q.Record(EvVerdict, 3, 0, 16)
	q.Record(EvQuarantine, 4, 2, 0)
	q.Record(EvShim, 4, PackName("kv_key"), 120)
	out := r.Dump()
	for _, want := range []string{"verdict", "ok", "quarantine", "violation=1", "sem=kv_key", `queue 0 "q0"`} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}
