// Microbenchmarks for the recording primitives themselves: the per-event
// cost here times the event count per packet is the hot-path budget math
// behind SamplePeriod (DESIGN.md §22). Run with -tags flight_off to see
// the compiled-out floor.
package flight

import "testing"

func BenchmarkRecord(b *testing.B) {
	q := NewRecorder(Config{}).Queue("q0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Record(EvRingPush, uint32(i), 1, 2)
	}
}

func BenchmarkRecordT(b *testing.B) {
	q := NewRecorder(Config{}).Queue("q0")
	ts := q.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.RecordT(ts, EvRingPush, uint32(i), 1, 2)
	}
}

func BenchmarkNow(b *testing.B) {
	q := NewRecorder(Config{}).Queue("q0")
	var s uint64
	for i := 0; i < b.N; i++ {
		s += q.Now()
	}
	_ = s
}
