//go:build flight_off

package flight

import "testing"

// Under -tags flight_off the recorder must compile to nothing: Now reports
// zero, Record/RecordT leave the ring empty, and Compiled is false so
// callers can surface the build mode.
func TestFlightOffIsNoOp(t *testing.T) {
	if Compiled {
		t.Fatal("Compiled = true under flight_off")
	}
	r := NewRecorder(Config{Size: 16})
	q := r.Queue("q0")
	if ts := q.Now(); ts != 0 {
		t.Errorf("Now() = %d, want 0", ts)
	}
	q.Record(EvDMAEmit, 1, 2, 3)
	q.RecordT(42, EvDeliver, 1, 2, 3)
	snap := r.Snapshot()
	for _, qs := range snap.Queues {
		if len(qs.Events) != 0 {
			t.Errorf("queue %q holds %d events, want 0", qs.Name, len(qs.Events))
		}
	}
}
