package flight

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// QueueEvents is one queue's slice of a snapshot, oldest event first.
type QueueEvents struct {
	ID     uint16
	Name   string
	Events []Event
}

// Snapshot is a consistent copy of a recorder's buffers, suitable for
// formatting, Chrome-trace export, or binary serialization.
type Snapshot struct {
	Reason string // why the snapshot was taken ("" for explicit dumps)
	Epoch  time.Time
	Queues []QueueEvents
}

// Events returns the total event count across queues.
func (s *Snapshot) Events() int {
	n := 0
	for _, q := range s.Queues {
		n += len(q.Events)
	}
	return n
}

// fmtArgs renders an event's payload words with per-code labels so dumps
// read as a narrative rather than raw integers.
func fmtArgs(ev Event) string {
	if ev.Code.nameArg() {
		if ev.Code == EvShim {
			return fmt.Sprintf("sem=%s ns=%d", UnpackName(ev.Arg0), ev.Arg1)
		}
		return "sem=" + UnpackName(ev.Arg0)
	}
	switch ev.Code {
	case EvDMAEmit:
		return fmt.Sprintf("bytes=%d path=%d", ev.Arg0, ev.Arg1)
	case EvRingPush, EvRingPop:
		return fmt.Sprintf("occ=%d", ev.Arg0)
	case EvRingFull:
		return fmt.Sprintf("occ=%d (full)", ev.Arg0)
	case EvRingWrap:
		return fmt.Sprintf("laps=%d", ev.Arg0)
	case EvVerdict, EvQuarantine:
		if ev.Arg0 == 0 {
			return "ok"
		}
		return fmt.Sprintf("violation=%d", ev.Arg0-1)
	case EvDeliver:
		return fmt.Sprintf("dma→poll=%dns dma→deliver=%dns", ev.Arg0, ev.Arg1)
	case EvDegrade:
		return fmt.Sprintf("fault_streak=%d", ev.Arg0)
	case EvResetAttempt:
		return fmt.Sprintf("backoff=%d", ev.Arg0)
	case EvRestore:
		return fmt.Sprintf("after_attempts=%d", ev.Arg0)
	case EvDrain:
		return fmt.Sprintf("drained=%d gen=%d", ev.Arg0, ev.Arg1)
	case EvApply:
		return fmt.Sprintf("attempt=%d gen=%d", ev.Arg0, ev.Arg1)
	case EvQuiesce, EvVerify, EvSwap, EvRollback:
		return fmt.Sprintf("gen=%d", ev.Arg1)
	case EvFault:
		return fmt.Sprintf("class=%d", ev.Arg0)
	case EvHangStart:
		return fmt.Sprintf("burst=%d", ev.Arg0)
	case EvHangClear:
		return fmt.Sprintf("refused=%d", ev.Arg0)
	case EvGarbage:
		return fmt.Sprintf("sem=%s gen=%d", UnpackName(ev.Arg0), ev.Arg1)
	case EvOrderViol:
		return fmt.Sprintf("gen=%d", ev.Arg1)
	case EvTelemetry:
		return fmt.Sprintf("bytes=%d", ev.Arg0)
	default:
		if ev.Arg0 == 0 && ev.Arg1 == 0 {
			return ""
		}
		return fmt.Sprintf("arg0=%d arg1=%d", ev.Arg0, ev.Arg1)
	}
}

// Format renders the snapshot as a human-readable table, one section per
// queue: timestamp (µs since epoch), event name, stream sequence, decoded
// arguments.
func (s *Snapshot) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight snapshot")
	if s.Reason != "" {
		fmt.Fprintf(&b, " (reason: %s)", s.Reason)
	}
	if !s.Epoch.IsZero() {
		fmt.Fprintf(&b, " epoch=%s", s.Epoch.Format(time.RFC3339Nano))
	}
	fmt.Fprintf(&b, " events=%d\n", s.Events())
	for _, q := range s.Queues {
		fmt.Fprintf(&b, "queue %d %q: %d events\n", q.ID, q.Name, len(q.Events))
		for _, ev := range q.Events {
			fmt.Fprintf(&b, "  %14.3fµs  %-13s seq=%-8d %s\n",
				float64(ev.TS)/1e3, ev.Code.String(), ev.Seq, fmtArgs(ev))
		}
	}
	return b.String()
}

// Binary dump format ("ODFLIGHT"): a fixed header, then one section per
// queue with its raw 32-byte little-endian events. Written by postmortems
// (-flight-dump) and decoded offline by `opendesc flight`.
const (
	dumpMagic   = "ODFLIGHT"
	dumpVersion = 1
)

// WriteTo serializes the snapshot in the binary dump format.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.WriteString(dumpMagic)
	le := binary.LittleEndian
	var u16 [2]byte
	var u32 [4]byte
	var u64 [8]byte
	put16 := func(v uint16) { le.PutUint16(u16[:], v); buf.Write(u16[:]) }
	put32 := func(v uint32) { le.PutUint32(u32[:], v); buf.Write(u32[:]) }
	put64 := func(v uint64) { le.PutUint64(u64[:], v); buf.Write(u64[:]) }
	put16(dumpVersion)
	put64(uint64(s.Epoch.UnixNano()))
	put16(uint16(len(s.Reason)))
	buf.WriteString(s.Reason)
	put16(uint16(len(s.Queues)))
	for _, q := range s.Queues {
		put16(q.ID)
		put16(uint16(len(q.Name)))
		buf.WriteString(q.Name)
		put32(uint32(len(q.Events)))
		for _, ev := range q.Events {
			put64(ev.TS)
			put64(uint64(ev.Code)<<48 | uint64(ev.Queue)<<32 | uint64(ev.Seq))
			put64(ev.Arg0)
			put64(ev.Arg1)
		}
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadDump parses a binary dump produced by WriteTo.
func ReadDump(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(dumpMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("flight: reading dump magic: %w", err)
	}
	if string(magic) != dumpMagic {
		return nil, fmt.Errorf("flight: bad magic %q: not a flight dump", magic)
	}
	var u16 [2]byte
	var u32 [4]byte
	var u64 [8]byte
	le := binary.LittleEndian
	get16 := func() (uint16, error) {
		_, err := io.ReadFull(br, u16[:])
		return le.Uint16(u16[:]), err
	}
	get32 := func() (uint32, error) {
		_, err := io.ReadFull(br, u32[:])
		return le.Uint32(u32[:]), err
	}
	get64 := func() (uint64, error) {
		_, err := io.ReadFull(br, u64[:])
		return le.Uint64(u64[:]), err
	}
	ver, err := get16()
	if err != nil {
		return nil, err
	}
	if ver != dumpVersion {
		return nil, fmt.Errorf("flight: dump version %d, this build reads %d", ver, dumpVersion)
	}
	epochNs, err := get64()
	if err != nil {
		return nil, err
	}
	rlen, err := get16()
	if err != nil {
		return nil, err
	}
	reason := make([]byte, rlen)
	if _, err := io.ReadFull(br, reason); err != nil {
		return nil, err
	}
	nq, err := get16()
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{Reason: string(reason), Epoch: time.Unix(0, int64(epochNs))}
	for i := 0; i < int(nq); i++ {
		var qe QueueEvents
		if qe.ID, err = get16(); err != nil {
			return nil, err
		}
		nlen, err := get16()
		if err != nil {
			return nil, err
		}
		name := make([]byte, nlen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		qe.Name = string(name)
		count, err := get32()
		if err != nil {
			return nil, err
		}
		for j := 0; j < int(count); j++ {
			var ev Event
			if ev.TS, err = get64(); err != nil {
				return nil, fmt.Errorf("flight: truncated dump at queue %d event %d: %w", i, j, err)
			}
			meta, err := get64()
			if err != nil {
				return nil, err
			}
			ev.Code = Code(meta >> 48)
			ev.Queue = uint16(meta >> 32)
			ev.Seq = uint32(meta)
			if ev.Arg0, err = get64(); err != nil {
				return nil, err
			}
			if ev.Arg1, err = get64(); err != nil {
				return nil, err
			}
			qe.Events = append(qe.Events, ev)
		}
		snap.Queues = append(snap.Queues, qe)
	}
	return snap, nil
}

// ChromeEvent is one entry of the Chrome trace_event format (the JSON array
// flavor), loadable in chrome://tracing and Perfetto. Exported so fleet
// trace writers can merge controller spans with host flight events into one
// timeline.
type ChromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// TraceEvents renders the snapshot's queues as Chrome trace_event entries
// under the given process id. Each queue becomes a named thread; EvDeliver
// events (which carry the completion latency in their args) become duration
// spans covering DMA→deliver, and everything else becomes instant events.
// A non-empty process labels the pid with a process_name metadata event
// (used by merged multi-host traces; the single-snapshot export omits it).
func (s *Snapshot) TraceEvents(pid int, process string) []ChromeEvent {
	out := []ChromeEvent{}
	if process != "" {
		out = append(out, ChromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": process},
		})
	}
	qs := append([]QueueEvents(nil), s.Queues...)
	sort.Slice(qs, func(i, j int) bool { return qs[i].ID < qs[j].ID })
	for _, q := range qs {
		out = append(out, ChromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: int(q.ID),
			Args: map[string]any{"name": q.Name},
		})
		for _, ev := range q.Events {
			switch {
			case ev.Code == EvDeliver && ev.Arg1 > 0:
				start := uint64(0)
				if ev.Arg1 <= ev.TS {
					start = ev.TS - ev.Arg1
				}
				out = append(out, ChromeEvent{
					Name: "completion", Ph: "X",
					TS:  float64(start) / 1e3,
					Dur: float64(ev.Arg1) / 1e3,
					PID: pid, TID: int(q.ID),
					Args: map[string]any{
						"seq":               ev.Seq,
						"dma_to_poll_ns":    ev.Arg0,
						"dma_to_deliver_ns": ev.Arg1,
					},
				})
			default:
				args := map[string]any{"seq": ev.Seq}
				if ev.Code.nameArg() {
					args["sem"] = UnpackName(ev.Arg0)
					if ev.Code == EvShim {
						args["ns"] = ev.Arg1
					}
				} else if ev.Arg0 != 0 || ev.Arg1 != 0 {
					args["arg0"] = ev.Arg0
					args["arg1"] = ev.Arg1
				}
				out = append(out, ChromeEvent{
					Name: ev.Code.String(), Ph: "i",
					TS: float64(ev.TS) / 1e3, PID: pid, TID: int(q.ID),
					S: "t", Args: args,
				})
			}
		}
	}
	return out
}

// WriteChromeTrace renders the snapshot as Chrome trace_event JSON.
func (s *Snapshot) WriteChromeTrace(w io.Writer) error {
	return WriteTraceEvents(w, s.TraceEvents(1, ""))
}

// WriteTraceEvents encodes pre-built trace entries as one Chrome
// trace_event JSON document.
func WriteTraceEvents(w io.Writer, evs []ChromeEvent) error {
	if evs == nil {
		evs = []ChromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{DisplayTimeUnit: "ns", TraceEvents: evs})
}

// NamedSnapshot pairs a snapshot with the host (or process) it came from,
// for merged multi-host trace export.
type NamedSnapshot struct {
	Name string
	Snap *Snapshot
}

// WriteMergedChromeTrace renders N snapshots as one time-aligned Chrome
// trace: one process per snapshot (named), one thread per queue. Event
// timestamps are used raw — hosts recorded on a shared (virtual) timeline
// already align, which is the fleet-simulation case this exists for; wall-
// clock dumps from different processes align only as well as their epochs
// do (each process's epoch is reported in its process_sort_index metadata
// absence — inspect `opendesc flight <dump>` text output for epochs).
func WriteMergedChromeTrace(w io.Writer, snaps []NamedSnapshot) error {
	evs := []ChromeEvent{}
	for i, ns := range snaps {
		evs = append(evs, ns.Snap.TraceEvents(i+1, ns.Name)...)
	}
	return WriteTraceEvents(w, evs)
}

// Dump renders the full buffer as human-readable text.
func (r *Recorder) Dump() string { return r.Snapshot().Format() }

// WriteChromeTrace snapshots the full buffer and renders it as Chrome
// trace_event JSON.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	return r.Snapshot().WriteChromeTrace(w)
}

// Postmortem snapshots the last PostmortemEvents events per queue, renders
// them, and — when a dump directory is configured — writes a binary dump
// file. It returns the file path ("" when no file was written). Called by
// the hardened driver on watchdog trips and quarantines, and by the fault
// injector on hang recoveries.
func (r *Recorder) Postmortem(reason string) string {
	snap := r.snapshot(r.cfg.PostmortemEvents, reason)
	text := snap.Format()
	r.pmMu.Lock()
	r.pmCount++
	n := r.pmCount
	r.pmReason = reason
	r.pmText = text
	r.pmLastSnap = snap
	dir := r.cfg.DumpDir
	r.pmMu.Unlock()
	if dir == "" {
		return ""
	}
	// A missing dump directory must not silently swallow postmortems (the
	// one artifact a crash investigation needs), so create it on demand.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}
	path := filepath.Join(dir, fmt.Sprintf("flight-%03d-%s.odfl", n, sanitizeReason(reason)))
	f, err := os.Create(path)
	if err != nil {
		return ""
	}
	_, werr := snap.WriteTo(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return ""
	}
	r.pmMu.Lock()
	r.pmFiles = append(r.pmFiles, path)
	r.pmMu.Unlock()
	return path
}

func sanitizeReason(s string) string {
	out := []byte(s)
	for i, c := range out {
		if !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' || c == '-') {
			out[i] = '-'
		}
	}
	if len(out) == 0 {
		return "snapshot"
	}
	return string(out)
}

// Postmortems returns how many postmortem snapshots have been taken.
func (r *Recorder) Postmortems() uint64 {
	r.pmMu.Lock()
	defer r.pmMu.Unlock()
	return r.pmCount
}

// LastPostmortem returns the most recent postmortem's reason and rendered
// text; ok is false when none has been taken.
func (r *Recorder) LastPostmortem() (reason, text string, ok bool) {
	r.pmMu.Lock()
	defer r.pmMu.Unlock()
	return r.pmReason, r.pmText, r.pmCount > 0
}

// LastSnapshot returns the most recent postmortem snapshot (nil if none).
func (r *Recorder) LastSnapshot() *Snapshot {
	r.pmMu.Lock()
	defer r.pmMu.Unlock()
	return r.pmLastSnap
}

// DumpFiles lists the postmortem dump files written so far.
func (r *Recorder) DumpFiles() []string {
	r.pmMu.Lock()
	defer r.pmMu.Unlock()
	return append([]string(nil), r.pmFiles...)
}

// Handler serves the live buffer: text by default, ?format=trace for Chrome
// trace_event JSON, ?format=bin for the binary dump format, ?n=K to limit to
// the last K events per queue. Mount it on the stats mux as /debug/flight.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		max := 0
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				max = v
			}
		}
		snap := r.snapshot(max, "live")
		switch req.URL.Query().Get("format") {
		case "trace":
			w.Header().Set("Content-Type", "application/json")
			snap.WriteChromeTrace(w)
		case "bin":
			w.Header().Set("Content-Type", "application/octet-stream")
			snap.WriteTo(w)
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, snap.Format())
			fmt.Fprintf(w, "postmortems=%d enabled=%v compiled=%v\n",
				r.Postmortems(), r.Enabled(), Compiled)
		}
	})
}
