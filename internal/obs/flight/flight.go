// Package flight is the hot-path flight recorder (DESIGN.md §22): an
// always-on, lock-free ring of compact binary events that records the life of
// every completion — DMA emit, ring push/pop, validator verdict, accessor
// reads, hardening classifications, switchover phases — and can replay the
// recent past when something goes wrong.
//
// The design borrows from DPDK's rte_trace and the kernel's ftrace ring
// buffer: recording must be wait-free and allocation-free so it can stay
// enabled in production, and the buffer overwrites its oldest events so the
// interesting history (the moments before a watchdog trip) is always there.
//
// Each Queue owns a fixed power-of-two ring of 32-byte events. A writer
// claims a slot with a single atomic ticket increment, marks it claimed,
// stores the four payload words, and releases it — five plain atomic stores,
// no CAS loop, no lock. Readers never block writers: a snapshot validates
// each slot's ticket before and after copying the payload and simply skips
// slots that were concurrently rewritten (seqlock-style torn-read
// protection). The one pathological case — a writer preempted mid-record
// while the rest of the system laps the entire ring — is handled by a
// claim-time CAS that drops the lapping event instead of corrupting the
// stalled writer's slot; such drops are counted, never silent.
//
// Build with -tags flight_off to compile recording out entirely: Record,
// RecordT and Now become empty functions and the hot-path tax is zero.
package flight

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Code identifies an event type. Codes are stable across processes: they are
// written into binary dump files and decoded by `opendesc flight`.
type Code uint16

const (
	EvNone Code = iota

	// Device side (nicsim).
	EvDMAEmit  // completion serialized and DMAed; arg0 = record bytes, arg1 = path index
	EvDMALost  // injector ate the completion record; packet counted, nothing DMAed
	EvHangDrop // packet refused while the device is wedged
	EvDevReset // device reset accepted (function-level reset completed)

	// Descriptor ring.
	EvRingPush  // record published; seq = absolute slot index, arg0 = occupancy after
	EvRingFull  // producer stalled: ring full; arg0 = occupancy (= capacity)
	EvRingPop   // record consumed; seq = absolute slot index, arg0 = occupancy after
	EvRingEmpty // consumer found the ring empty with work pending
	EvRingWrap  // tail wrapped to slot 0; arg0 = completed laps

	// Validation (codegen.Validator).
	EvVerdict // arg0 = 0 for conforming, violation kind+1 otherwise; arg1 = record bytes

	// Metadata reads.
	EvReadHW   // synthesized hardware accessor; arg0 = packed semantic name
	EvReadSoft // SoftNIC shim fallback read; arg0 = packed semantic name
	EvShim     // instrumented softnic shim call; arg0 = packed name, arg1 = ns

	// Hardened-driver classifications (harden.go).
	EvQuarantine   // validator rejected a record; arg0 = violation kind+1
	EvStale        // pre-reset completion dropped after recovery
	EvResync       // pending entry skipped to re-align with the device
	EvSpurious     // completion with no pending packet drained
	EvDegrade      // watchdog tripped: entering SoftNIC degraded mode; arg0 = fault streak
	EvResetAttempt // recovery tick issued a device reset; seq = attempt, arg0 = backoff ticks
	EvRestore      // hardware mode restored; arg0 = reset attempts it took

	// Delivery (driver poll).
	EvDeliver // packet handed to the handler; arg0 = DMA→poll ns, arg1 = DMA→deliver ns

	// Switchover phases (evolve.Engine). arg1 = target generation.
	EvQuiesce  // switchover begun: Rx parked
	EvDrain    // in-flight completions drained; arg0 = drained count
	EvApply    // new descriptor layout applied to the device; arg0 = attempt
	EvVerify   // post-apply probe verified the active path
	EvSwap     // runtime swapped: new generation live
	EvRollback // switchover failed: previous generation restored

	// Fault injection (faults.Injector).
	EvFault     // a fault was injected; arg0 = faults.Class
	EvHangStart // scheduled device hang began; arg0 = planned burst
	EvHangClear // device reset cleared a hang; arg0 = packets refused while wedged

	// Fleet datapath oracles and telemetry (fleet.Host). These are the
	// anomaly events a telemetry report always carries verbatim; the
	// controller cites them in evidence-bake rollback reasons.
	EvGarbage   // golden-metadata oracle violation; arg0 = packed semantic name, arg1 = generation
	EvOrderViol // exactly-once/FIFO violation; arg1 = generation
	EvTelemetry // telemetry report built; seq = report sequence, arg0 = report bytes

	numCodes
)

var codeNames = [numCodes]string{
	EvNone:         "none",
	EvDMAEmit:      "dma_emit",
	EvDMALost:      "dma_lost",
	EvHangDrop:     "hang_drop",
	EvDevReset:     "dev_reset",
	EvRingPush:     "ring_push",
	EvRingFull:     "ring_full",
	EvRingPop:      "ring_pop",
	EvRingEmpty:    "ring_empty",
	EvRingWrap:     "ring_wrap",
	EvVerdict:      "verdict",
	EvReadHW:       "read_hw",
	EvReadSoft:     "read_soft",
	EvShim:         "shim",
	EvQuarantine:   "quarantine",
	EvStale:        "stale",
	EvResync:       "resync",
	EvSpurious:     "spurious",
	EvDegrade:      "degrade",
	EvResetAttempt: "reset_attempt",
	EvRestore:      "restore",
	EvDeliver:      "deliver",
	EvQuiesce:      "quiesce",
	EvDrain:        "drain",
	EvApply:        "apply",
	EvVerify:       "verify",
	EvSwap:         "swap",
	EvRollback:     "rollback",
	EvFault:        "fault",
	EvHangStart:    "hang_start",
	EvHangClear:    "hang_clear",
	EvGarbage:      "garbage",
	EvOrderViol:    "order_viol",
	EvTelemetry:    "telemetry",
}

// SamplePeriod is the 1-in-N period for routine per-packet events (DMA
// emits, ring push/pop, clean verdicts, accessor reads, shim calls). At
// ~60-85ns per recorded event, tracing every stage of every completion
// costs several hundred ns/pkt — over the recorder's 5% hot-path budget.
// Sampling the routine traffic keeps a representative slice of healthy
// lifecycles in the ring while anomalies (stalls, violations, hardening
// classifications, watchdog and switchover events) and per-completion
// EvDeliver latencies are always recorded.
const SamplePeriod = 16

// Sampled reports whether a routine event with ordinal seq falls on the
// sampling grid. Device, ring, validator and driver all count completions
// 1-based in lockstep, so a sampled packet carries its whole lifecycle —
// emit, push, pop, verdict, reads, deliver — not disjoint fragments.
func Sampled(seq uint32) bool { return seq&(SamplePeriod-1) == 0 }

// NowIfSampled returns Now() when packet seq falls on the sampling grid and
// 0 otherwise. Drivers stamp their pending packets with it at Rx: the zero
// timestamp then propagates "not sampled" through every downstream latency
// derivation and per-read event with no further branching, so 15 of 16
// packets pay a single mask test for the whole recording machinery.
func (q *Queue) NowIfSampled(seq uint32) uint64 {
	if !Sampled(seq) {
		return 0
	}
	return q.Now()
}

// String returns the stable wire name of the code.
func (c Code) String() string {
	if int(c) < len(codeNames) && codeNames[c] != "" {
		return codeNames[c]
	}
	return fmt.Sprintf("code_%d", uint16(c))
}

// nameArgs maps codes whose arg0 is a packed semantic name (PackName) so the
// human-readable formatter can unpack them.
func (c Code) nameArg() bool {
	return c == EvReadHW || c == EvReadSoft || c == EvShim
}

// PackName packs the first 8 bytes of a semantic name into a u64 so reads can
// be recorded without allocating. UnpackName reverses it for display.
func PackName(s string) uint64 {
	var v uint64
	for i := 0; i < len(s) && i < 8; i++ {
		v |= uint64(s[i]) << (8 * i)
	}
	return v
}

// UnpackName decodes a PackName value back into its (possibly truncated)
// string form.
func UnpackName(v uint64) string {
	var b []byte
	for i := 0; i < 8; i++ {
		c := byte(v >> (8 * i))
		if c == 0 {
			break
		}
		b = append(b, c)
	}
	return string(b)
}

// Event is one decoded 32-byte flight-recorder entry.
type Event struct {
	TS    uint64 // nanoseconds since the recorder epoch
	Code  Code
	Queue uint16
	Seq   uint32 // per-stream sequence (packet index, ring slot, generation…)
	Arg0  uint64
	Arg1  uint64
}

// slot is the in-memory storage for one event: the seqlock state word plus
// the four payload words, all atomics so concurrent snapshot reads are
// race-detector clean. state holds ticket<<1, with bit 0 set while the
// writer is between claim and release.
type slot struct {
	state atomic.Uint64
	ts    atomic.Uint64
	meta  atomic.Uint64 // code(16) | queue(16) | seq(32)
	a0    atomic.Uint64
	a1    atomic.Uint64
}

// Queue is one event ring, conventionally one per device queue or per
// goroutine so the common case is a single writer (multiple writers are safe,
// see the claim protocol above). The zero Queue pointer is valid and records
// nothing, so instrumented layers can keep an always-nil field at zero cost.
type Queue struct {
	rec     *Recorder
	name    string
	id      uint16
	mask    uint64
	wpos    atomic.Uint64 // next ticket - 1; tickets are 1-based
	dropped atomic.Uint64 // events discarded by the lap-protection CAS
	slots   []slot
}

// Name returns the queue's registration name.
func (q *Queue) Name() string { return q.name }

// ID returns the queue's numeric id (assigned at registration, stable within
// a recorder).
func (q *Queue) ID() uint16 { return q.id }

// Recorder returns the owning recorder, or nil for a nil queue.
func (q *Queue) Recorder() *Recorder {
	if q == nil {
		return nil
	}
	return q.rec
}

// Dropped reports events lost to the writer-lap protection (a writer stalled
// mid-record while the ring wrapped past it). Zero in any sane run.
func (q *Queue) Dropped() uint64 {
	if q == nil {
		return 0
	}
	return q.dropped.Load()
}

// record claims a ticket, validates slot ownership, and publishes the event.
// The claim CAS only succeeds while the slot holds a released (even) state
// from an earlier lap; if a stalled writer from a previous lap is still
// mid-record, or a faster writer from a later lap got there first, the event
// is dropped (counted) instead of racing them. The retry loop runs at most
// twice: any state change that defeats the CAS also satisfies a drop
// condition, so recording stays wait-free.
func (q *Queue) record(ts uint64, c Code, seq uint32, a0, a1 uint64) {
	t := q.wpos.Add(1) // 1-based ticket
	s := &q.slots[(t-1)&q.mask]
	for {
		cur := s.state.Load()
		if cur&1 != 0 || cur >= t<<1 {
			q.dropped.Add(1)
			return
		}
		if s.state.CompareAndSwap(cur, t<<1|1) {
			break
		}
	}
	s.ts.Store(ts)
	s.meta.Store(uint64(c)<<48 | uint64(q.id)<<32 | uint64(seq))
	s.a0.Store(a0)
	s.a1.Store(a1)
	s.state.Store(t << 1)
}

// snapshot copies out up to max most-recent events (all when max <= 0),
// oldest first, skipping slots that are mid-write or were rewritten while
// being copied.
func (q *Queue) snapshot(max int) []Event {
	w := q.wpos.Load()
	lo := uint64(1)
	if n := uint64(len(q.slots)); w > n {
		lo = w - n + 1
	}
	if max > 0 && w >= lo && w-lo+1 > uint64(max) {
		lo = w - uint64(max) + 1
	}
	var out []Event
	for t := lo; t <= w; t++ {
		s := &q.slots[(t-1)&q.mask]
		want := t << 1
		if s.state.Load() != want {
			continue
		}
		ev := Event{
			TS:   s.ts.Load(),
			Arg0: s.a0.Load(),
			Arg1: s.a1.Load(),
		}
		meta := s.meta.Load()
		if s.state.Load() != want { // rewritten under us: discard the torn copy
			continue
		}
		ev.Code = Code(meta >> 48)
		ev.Queue = uint16(meta >> 32)
		ev.Seq = uint32(meta)
		out = append(out, ev)
	}
	return out
}

// Config sizes a Recorder. The zero value is ready to use.
type Config struct {
	// Size is the per-queue ring capacity in events, rounded up to a power
	// of two. Default 4096 (160 KB per queue).
	Size int
	// PostmortemEvents is how many trailing events per queue a postmortem
	// snapshot keeps. Default 512.
	PostmortemEvents int
	// DumpDir, when set, makes every postmortem also write a binary dump
	// file (decode with `opendesc flight`).
	DumpDir string
}

const (
	defaultSize       = 4096
	defaultPostmortem = 512
)

// Recorder owns a set of event queues sharing one epoch, plus the postmortem
// machinery. Drivers create one per instance (the buffer is bounded, so an
// always-on recorder per driver costs a fixed few hundred KB).
type Recorder struct {
	epoch   time.Time
	cfg     Config
	enabled atomic.Bool

	mu     sync.Mutex
	queues []*Queue
	byName map[string]*Queue

	pmMu       sync.Mutex
	pmCount    uint64
	pmReason   string
	pmText     string
	pmFiles    []string
	pmLastSnap *Snapshot
}

// NewRecorder builds an enabled recorder. Zero cfg fields take defaults.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Size <= 0 {
		cfg.Size = defaultSize
	}
	cfg.Size = ceilPow2(cfg.Size)
	if cfg.PostmortemEvents <= 0 {
		cfg.PostmortemEvents = defaultPostmortem
	}
	r := &Recorder{
		epoch:  time.Now(),
		cfg:    cfg,
		byName: map[string]*Queue{},
	}
	r.enabled.Store(true)
	return r
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Queue returns the named event ring, creating it on first use. Safe for
// concurrent callers; the returned queue is stable for the recorder's life.
func (r *Recorder) Queue(name string) *Queue {
	r.mu.Lock()
	defer r.mu.Unlock()
	if q, ok := r.byName[name]; ok {
		return q
	}
	q := &Queue{
		rec:   r,
		name:  name,
		id:    uint16(len(r.queues)),
		mask:  uint64(r.cfg.Size - 1),
		slots: make([]slot, r.cfg.Size),
	}
	r.queues = append(r.queues, q)
	r.byName[name] = q
	return q
}

// SetEnabled toggles recording at runtime. Disabled recording costs one
// atomic load per call site.
func (r *Recorder) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether recording is on.
func (r *Recorder) Enabled() bool { return r.enabled.Load() }

// SetDumpDir (re)directs postmortem dump files. Empty disables file output.
func (r *Recorder) SetDumpDir(dir string) {
	r.pmMu.Lock()
	r.cfg.DumpDir = dir
	r.pmMu.Unlock()
}

// Epoch returns the wall-clock instant event timestamps are relative to.
func (r *Recorder) Epoch() time.Time { return r.epoch }

// Snapshot copies every queue's full buffer, oldest events first.
func (r *Recorder) Snapshot() *Snapshot { return r.snapshot(0, "") }

func (r *Recorder) snapshot(maxPerQueue int, reason string) *Snapshot {
	r.mu.Lock()
	queues := make([]*Queue, len(r.queues))
	copy(queues, r.queues)
	r.mu.Unlock()
	snap := &Snapshot{Reason: reason, Epoch: r.epoch}
	for _, q := range queues {
		snap.Queues = append(snap.Queues, QueueEvents{
			ID:     q.id,
			Name:   q.name,
			Events: q.snapshot(maxPerQueue),
		})
	}
	return snap
}
