//go:build flight_off

package flight

// Compiled reports whether recording is compiled in (false under the
// flight_off build tag).
const Compiled = false

// Now is compiled out: it always reports recording-off so instrumented call
// sites skip their event emission entirely.
func (q *Queue) Now() uint64 { return 0 }

// Record is compiled out.
func (q *Queue) Record(c Code, seq uint32, a0, a1 uint64) {}

// RecordT is compiled out.
func (q *Queue) RecordT(ts uint64, c Code, seq uint32, a0, a1 uint64) {}
