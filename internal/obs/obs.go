// Package obs is the repository's observability substrate: lock-free
// counters, gauges and log-scale histograms, lightweight span tracing for
// the compiler pipeline, and a registry that renders both a human-readable
// table and Prometheus text exposition format (optionally over net/http).
//
// The package is dependency-free (stdlib only) and designed for hot-path
// use: counters are single atomic words padded to a cache line so a device
// goroutine, a host goroutine, and a stats scraper never false-share.
// This is the software analogue of a NIC's ethtool/devlink counter block —
// the paper argues metadata interfaces should be inspectable contracts,
// and an interface you cannot observe is not inspectable.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// cacheLine is the assumed coherence granule; counters are padded to it so
// adjacent metrics touched by different cores do not false-share.
const cacheLine = 64

// Counter is a monotonically increasing atomic counter (an ethtool-style
// statistic). The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that also tracks its high-water
// mark (the largest value ever Set). The zero value is ready to use.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
	_   [cacheLine - 16]byte
}

// Set stores v and raises the high-water mark when v exceeds it.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Add adjusts the gauge by d and returns the new value (raising the
// high-water mark as needed).
func (g *Gauge) Add(d int64) int64 {
	v := g.v.Add(d)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return v
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Label is one key="value" dimension of a metric.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind discriminates registry entries.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// metric is one registered series: a name, an ordered label set, and a
// value source.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   kind

	c  *Counter
	g  *Gauge
	h  *Histogram
	fn func() uint64 // counter-func source
	gf func() int64  // gauge-func source
}

// labelString renders {k="v",...} (empty string for no labels).
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	s := "{"
	for i, l := range labels {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return s + "}"
}

// seriesKey uniquely identifies a metric within a registry.
func seriesKey(name string, labels []Label) string { return name + labelString(labels) }

// Registry holds a set of named metrics. Registration is mutex-guarded;
// metric updates are lock-free; rendering takes a snapshot under the mutex
// so it is safe concurrently with updates and further registration.
type Registry struct {
	mu      sync.Mutex
	ordered []*metric
	byKey   map[string]*metric
	extra   []extraRoute // additional handlers mounted on Handler()'s mux
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// Default is the process-wide registry used by the package-level helpers.
var Default = NewRegistry()

// register adds m unless a series with the same key exists, in which case
// the existing one is returned (idempotent registration so components can
// re-register on reconfiguration).
func (r *Registry) register(m *metric) *metric {
	key := seriesKey(m.name, m.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byKey[key]; ok {
		return prev
	}
	r.byKey[key] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(&metric{name: name, help: help, labels: labels, kind: kindCounter, c: &Counter{}})
	return m.c
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(&metric{name: name, help: help, labels: labels, kind: kindGauge, g: &Gauge{}})
	return m.g
}

// Histogram registers (or returns the existing) histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	m := r.register(&metric{name: name, help: help, labels: labels, kind: kindHistogram, h: NewHistogram()})
	return m.h
}

// CounterFunc registers a counter whose value is read from fn at render
// time — for exposing counters owned by another subsystem (e.g. a ring's
// produced count) without double bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(&metric{name: name, help: help, labels: labels, kind: kindCounterFunc, fn: fn})
}

// GaugeFunc registers a gauge read from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(&metric{name: name, help: help, labels: labels, kind: kindGaugeFunc, gf: fn})
}

// AttachCounter registers an externally owned Counter under the given
// series, so subsystems can keep their counters inline (hot, padded) and
// still expose them.
func (r *Registry) AttachCounter(name, help string, c *Counter, labels ...Label) {
	r.register(&metric{name: name, help: help, labels: labels, kind: kindCounter, c: c})
}

// AttachGauge registers an externally owned Gauge.
func (r *Registry) AttachGauge(name, help string, g *Gauge, labels ...Label) {
	r.register(&metric{name: name, help: help, labels: labels, kind: kindGauge, g: g})
}

// AttachHistogram registers an externally owned Histogram.
func (r *Registry) AttachHistogram(name, help string, h *Histogram, labels ...Label) {
	r.register(&metric{name: name, help: help, labels: labels, kind: kindHistogram, h: h})
}

// snapshot copies the metric list under the lock.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, len(r.ordered))
	copy(out, r.ordered)
	return out
}

// value reads the metric's current scalar value (histograms report count).
func (m *metric) value() float64 {
	switch m.kind {
	case kindCounter:
		return float64(m.c.Load())
	case kindGauge:
		return float64(m.g.Load())
	case kindCounterFunc:
		return float64(m.fn())
	case kindGaugeFunc:
		return float64(m.gf())
	case kindHistogram:
		return float64(m.h.Count())
	}
	return 0
}

// sortedByName returns the snapshot grouped by metric name (registration
// order within a name), as Prometheus exposition requires one HELP/TYPE
// block per name.
func (r *Registry) sortedByName() []*metric {
	ms := r.snapshot()
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	return ms
}
