// Package obs is the repository's observability substrate: lock-free
// counters, gauges and log-scale histograms, lightweight span tracing for
// the compiler pipeline, and a registry that renders both a human-readable
// table and Prometheus text exposition format (optionally over net/http).
//
// The package is dependency-free (stdlib only) and designed for hot-path
// use: counters are single atomic words padded to a cache line so a device
// goroutine, a host goroutine, and a stats scraper never false-share.
// This is the software analogue of a NIC's ethtool/devlink counter block —
// the paper argues metadata interfaces should be inspectable contracts,
// and an interface you cannot observe is not inspectable.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// cacheLine is the assumed coherence granule; counters are padded to it so
// adjacent metrics touched by different cores do not false-share.
const cacheLine = 64

// Counter is a monotonically increasing atomic counter (an ethtool-style
// statistic). The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that also tracks its high-water
// mark (the largest value ever Set). The zero value is ready to use.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
	_   [cacheLine - 16]byte
}

// Set stores v and raises the high-water mark when v exceeds it.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Add adjusts the gauge by d and returns the new value (raising the
// high-water mark as needed).
func (g *Gauge) Add(d int64) int64 {
	v := g.v.Add(d)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return v
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Label is one key="value" dimension of a metric.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind discriminates registry entries.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindFloatFunc
)

func (k kind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// metric is one registered series: a name, an ordered label set, and a
// value source.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   kind

	c  *Counter
	g  *Gauge
	h  *Histogram
	fn func() uint64  // counter-func source
	gf func() int64   // gauge-func source
	ff func() float64 // float-func source
}

// labelString renders {k="v",...} (empty string for no labels).
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	s := "{"
	for i, l := range labels {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return s + "}"
}

// seriesKey uniquely identifies a metric within a registry.
func seriesKey(name string, labels []Label) string { return name + labelString(labels) }

// Registry holds a set of named metrics. Registration is mutex-guarded;
// metric updates are lock-free; rendering takes a snapshot under the mutex
// so it is safe concurrently with updates and further registration.
//
// A Registry value is a view onto a shared store: WithLabels derives a view
// that appends namespace labels (tenant, driver, …) to every series
// registered through it, so multiple components can share one stats
// endpoint without colliding. All views render the same store.
type Registry struct {
	core *regCore
	// base labels are appended to every series registered through this view.
	base []Label
}

// regCore is the store shared by all views of one registry.
type regCore struct {
	mu      sync.Mutex
	ordered []*metric
	byKey   map[string]*metric
	// instances counts auto-disambiguated registrations per colliding key
	// (see register).
	instances  map[string]int
	collisions uint64
	extra      []extraRoute // additional handlers mounted on Handler()'s mux
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{core: &regCore{
		byKey:     make(map[string]*metric),
		instances: make(map[string]int),
	}}
}

// Default is the process-wide registry used by the package-level helpers.
var Default = NewRegistry()

// WithLabels returns a view of the registry that appends the given labels
// to every series registered through it. Views share the store: rendering
// any view renders everything. Give each driver/tenant its own view so
// components sharing a stats endpoint occupy disjoint label namespaces.
func (r *Registry) WithLabels(labels ...Label) *Registry {
	base := make([]Label, 0, len(r.base)+len(labels))
	base = append(base, r.base...)
	base = append(base, labels...)
	return &Registry{core: r.core, base: base}
}

// sameSource reports whether two registrations refer to the same underlying
// value source. Func-kind sources are not comparable and report true, which
// keeps their registration idempotent-by-key.
func sameSource(a, b *metric) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case kindCounter:
		return a.c == b.c
	case kindGauge:
		return a.g == b.g
	case kindHistogram:
		return a.h == b.h
	default:
		return true
	}
}

// register adds m. A series with the same key and the same source is
// returned as-is (idempotent registration so components can re-register on
// reconfiguration). When attach is set and the key is taken by a *different*
// source — two drivers exposing the same counter block on one endpoint —
// the new series is disambiguated with an auto-incrementing instance label
// instead of being silently dropped, so no registration loses its data.
func (r *Registry) register(m *metric, attach bool) *metric {
	if len(r.base) > 0 {
		m.labels = append(append(make([]Label, 0, len(m.labels)+len(r.base)), m.labels...), r.base...)
	}
	key := seriesKey(m.name, m.labels)
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.byKey[key]; ok {
		if !attach || sameSource(prev, m) {
			return prev
		}
		c.collisions++
		for {
			c.instances[key]++
			labels := append(append(make([]Label, 0, len(m.labels)+1), m.labels...),
				L("instance", strconv.Itoa(c.instances[key])))
			k := seriesKey(m.name, labels)
			if _, dup := c.byKey[k]; !dup {
				m.labels, key = labels, k
				break
			}
		}
	}
	c.byKey[key] = m
	c.ordered = append(c.ordered, m)
	return m
}

// Collisions reports how many registrations were instance-disambiguated
// because a different source claimed an identical series key.
func (r *Registry) Collisions() uint64 {
	r.core.mu.Lock()
	defer r.core.mu.Unlock()
	return r.core.collisions
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(&metric{name: name, help: help, labels: labels, kind: kindCounter, c: &Counter{}}, false)
	return m.c
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(&metric{name: name, help: help, labels: labels, kind: kindGauge, g: &Gauge{}}, false)
	return m.g
}

// Histogram registers (or returns the existing) histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	m := r.register(&metric{name: name, help: help, labels: labels, kind: kindHistogram, h: NewHistogram()}, false)
	return m.h
}

// CounterFunc registers a counter whose value is read from fn at render
// time — for exposing counters owned by another subsystem (e.g. a ring's
// produced count) without double bookkeeping. Func sources are not
// comparable, so re-registering an identical key stays idempotent; give
// each owner a WithLabels view to keep func series distinct.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(&metric{name: name, help: help, labels: labels, kind: kindCounterFunc, fn: fn}, false)
}

// GaugeFunc registers a gauge read from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(&metric{name: name, help: help, labels: labels, kind: kindGaugeFunc, gf: fn}, false)
}

// FloatFunc registers a gauge whose value is a float read from fn at
// render time — for ratios (cache hit rate, utilization) that the integer
// gauge kinds would truncate.
func (r *Registry) FloatFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&metric{name: name, help: help, labels: labels, kind: kindFloatFunc, ff: fn}, false)
}

// AttachCounter registers an externally owned Counter under the given
// series, so subsystems can keep their counters inline (hot, padded) and
// still expose them. Attaching a different Counter under an already-taken
// key disambiguates the new series with an instance label.
func (r *Registry) AttachCounter(name, help string, c *Counter, labels ...Label) {
	r.register(&metric{name: name, help: help, labels: labels, kind: kindCounter, c: c}, true)
}

// AttachGauge registers an externally owned Gauge.
func (r *Registry) AttachGauge(name, help string, g *Gauge, labels ...Label) {
	r.register(&metric{name: name, help: help, labels: labels, kind: kindGauge, g: g}, true)
}

// AttachHistogram registers an externally owned Histogram.
func (r *Registry) AttachHistogram(name, help string, h *Histogram, labels ...Label) {
	r.register(&metric{name: name, help: help, labels: labels, kind: kindHistogram, h: h}, true)
}

// snapshot copies the metric list under the lock.
func (r *Registry) snapshot() []*metric {
	r.core.mu.Lock()
	defer r.core.mu.Unlock()
	out := make([]*metric, len(r.core.ordered))
	copy(out, r.core.ordered)
	return out
}

// value reads the metric's current scalar value (histograms report count).
func (m *metric) value() float64 {
	switch m.kind {
	case kindCounter:
		return float64(m.c.Load())
	case kindGauge:
		return float64(m.g.Load())
	case kindCounterFunc:
		return float64(m.fn())
	case kindGaugeFunc:
		return float64(m.gf())
	case kindFloatFunc:
		return m.ff()
	case kindHistogram:
		return float64(m.h.Count())
	}
	return 0
}

// sortedByName returns the snapshot grouped by metric name (registration
// order within a name), as Prometheus exposition requires one HELP/TYPE
// block per name.
func (r *Registry) sortedByName() []*metric {
	ms := r.snapshot()
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	return ms
}
