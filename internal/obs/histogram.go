package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count: bucket i (i ≥ 1) holds values v
// with bits.Len64(v) == i, i.e. v ∈ [2^(i-1), 2^i − 1]; bucket 0 holds 0.
// Log2 bucketing covers the full uint64 range (1 ns … ~584 years, 1 B …
// 16 EiB) with constant memory and a branch-free index computation.
const histBuckets = 65

// Histogram is a lock-free fixed-bucket log-scale histogram for latencies
// (nanoseconds) and sizes (bytes). The zero value is NOT ready; use
// NewHistogram or Registry.Histogram.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// bucketUpper is the inclusive upper bound of bucket i.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << i) - 1
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// (0 ≤ q ≤ 1), so the estimate is within one log2 bucket of the true value.
// Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	// Snapshot the buckets; total may race with concurrent Observe, so
	// derive the total from the snapshot itself.
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation.
	rank := uint64(q*float64(total-1)) + 1
	var cum uint64
	for i := range counts {
		cum += counts[i]
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// HistogramSnapshot is a consistent-enough copy for rendering.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [histBuckets]uint64
}

// Snapshot copies the current bucket counts. Count/Sum are recomputed from
// the bucket snapshot so the cumulative series is internally consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = h.sum.Load()
	return s
}

// Mean returns the arithmetic mean of the snapshot (0 when empty, never
// NaN).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Merge returns the bucket-wise sum of s and o: the histogram that would
// result from observing both underlying series into one histogram. Count is
// recomputed from the merged buckets (so a merged snapshot always
// reconciles, even if an input was hand-built) and Sum is the sum of sums.
// Fleet rollups use it to aggregate per-host latency reports without
// re-binning.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	var out HistogramSnapshot
	for i := range out.Buckets {
		out.Buckets[i] = s.Buckets[i] + o.Buckets[i]
		out.Count += out.Buckets[i]
	}
	out.Sum = s.Sum + o.Sum
	return out
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// (0 ≤ q ≤ 1) of the frozen snapshot — the same estimate Histogram.Quantile
// gives, but computed over an immutable copy so exported perf records are
// internally consistent. Returns 0 for an empty snapshot (not NaN).
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q*float64(s.Count-1)) + 1
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}
