package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// buildTestRegistry creates a registry with one of everything, at fixed
// values, so the exposition output is deterministic.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("dev_rx_packets_total", "packets received", L("nic", "mlx5"), L("queue", "0"))
	c.Add(42)
	g := r.Gauge("ring_occupancy", "ring fill level", L("ring", "cmpt"))
	g.Set(7)
	g.Set(3)
	h := r.Histogram("rx_latency_ns", "per-packet latency")
	for _, v := range []uint64{1, 2, 3, 100, 1000, 1000} {
		h.Observe(v)
	}
	r.CounterFunc("ring_produced_total", "entries produced", func() uint64 { return 9 })
	r.GaugeFunc("ring_capacity", "ring slots", func() int64 { return 64 })
	return r
}

const goldenPrometheus = `# HELP dev_rx_packets_total packets received
# TYPE dev_rx_packets_total counter
dev_rx_packets_total{nic="mlx5",queue="0"} 42
# HELP ring_capacity ring slots
# TYPE ring_capacity gauge
ring_capacity 64
# HELP ring_occupancy ring fill level
# TYPE ring_occupancy gauge
ring_occupancy{ring="cmpt"} 3
# HELP ring_produced_total entries produced
# TYPE ring_produced_total counter
ring_produced_total 9
# HELP rx_latency_ns per-packet latency
# TYPE rx_latency_ns histogram
rx_latency_ns_bucket{le="1"} 1
rx_latency_ns_bucket{le="3"} 3
rx_latency_ns_bucket{le="127"} 4
rx_latency_ns_bucket{le="1023"} 6
rx_latency_ns_bucket{le="+Inf"} 6
rx_latency_ns_sum 2106
rx_latency_ns_count 6
`

func TestPrometheusGolden(t *testing.T) {
	var sb strings.Builder
	buildTestRegistry().WritePrometheus(&sb)
	if got := sb.String(); got != goldenPrometheus {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, goldenPrometheus)
	}
}

// parsePromLine splits a sample line into name, labels, value — a minimal
// parser for the text exposition format.
func parsePromLine(t *testing.T, line string) (name string, labels map[string]string, value float64) {
	t.Helper()
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.IndexByte(line, '}')
		if j < i {
			t.Fatalf("malformed labels in %q", line)
		}
		for _, pair := range strings.Split(line[i+1:j], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				t.Fatalf("malformed label pair %q in %q", pair, line)
			}
			unq, err := strconv.Unquote(v)
			if err != nil {
				t.Fatalf("label value %q not quoted in %q: %v", v, line, err)
			}
			labels[k] = unq
		}
		rest = line[j+1:]
	} else {
		var ok bool
		name, rest, ok = strings.Cut(line, " ")
		if !ok {
			t.Fatalf("no value in %q", line)
		}
		rest = " " + rest
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", line, err)
	}
	return name, labels, f
}

// TestPrometheusParsesLineByLine validates the exposition structurally:
// every non-comment line must parse as name{labels} value, every series must
// be preceded by a TYPE comment for its metric family, and histogram bucket
// counts must be cumulative.
func TestPrometheusParsesLineByLine(t *testing.T) {
	var sb strings.Builder
	buildTestRegistry().WritePrometheus(&sb)
	typed := map[string]string{}
	var lastBucketCum float64 = -1
	var lastBucketMetric string
	samples := 0
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, val := parsePromLine(t, line)
		samples++
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suffix); ok && typed[f] == "histogram" {
				family = f
			}
		}
		if _, ok := typed[family]; !ok {
			t.Errorf("series %s has no TYPE declaration", name)
		}
		if strings.HasSuffix(name, "_bucket") {
			if family != lastBucketMetric {
				lastBucketCum = -1
				lastBucketMetric = family
			}
			if val < lastBucketCum {
				t.Errorf("bucket counts not cumulative at %q (le=%s): %v < %v", line, labels["le"], val, lastBucketCum)
			}
			lastBucketCum = val
			if labels["le"] == "" {
				t.Errorf("bucket line %q missing le label", line)
			}
		}
	}
	if samples != 11 {
		t.Errorf("sample lines = %d, want 11", samples)
	}
}

func TestHTTPEndpoint(t *testing.T) {
	srv := httptest.NewServer(buildTestRegistry().Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if body != goldenPrometheus {
		t.Errorf("/metrics mismatch:\n%s", body)
	}
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("content type = %q", ctype)
	}

	body, ctype = get("/debug/vars")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("vars content type = %q", ctype)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	if vars[`dev_rx_packets_total{nic="mlx5",queue="0"}`] != float64(42) {
		t.Errorf("vars counter = %v", vars[`dev_rx_packets_total{nic="mlx5",queue="0"}`])
	}
	hist, ok := vars["rx_latency_ns"].(map[string]any)
	if !ok || hist["count"] != float64(6) {
		t.Errorf("vars histogram = %v", vars["rx_latency_ns"])
	}
}

func TestTableRendering(t *testing.T) {
	tab := buildTestRegistry().Table()
	for _, want := range []string{
		`dev_rx_packets_total{nic="mlx5",queue="0"}  42`,
		"3 (max 7)",
		"count=6",
		"p99=1023",
	} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
}

func TestServe(t *testing.T) {
	addr, closer, err := buildTestRegistry().Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if string(b) != goldenPrometheus {
		t.Errorf("served metrics mismatch:\n%s", b)
	}
}
