package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
)

// Table renders every registered metric as an aligned human-readable table
// (the `ethtool -S`-style dump behind `cmd/nicsim -stats`).
func (r *Registry) Table() string {
	ms := r.snapshot()
	var sb strings.Builder
	width := 0
	rows := make([][2]string, 0, len(ms))
	for _, m := range ms {
		name := m.name + labelString(m.labels)
		var val string
		if m.kind == kindHistogram {
			s := m.h.Snapshot()
			val = fmt.Sprintf("count=%d sum=%d p50=%d p90=%d p99=%d",
				s.Count, s.Sum, m.h.Quantile(0.50), m.h.Quantile(0.90), m.h.Quantile(0.99))
		} else if m.kind == kindGauge {
			val = fmt.Sprintf("%d (max %d)", m.g.Load(), m.g.Max())
		} else {
			val = formatValue(m.value())
		}
		if len(name) > width {
			width = len(name)
		}
		rows = append(rows, [2]string{name, val})
	}
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-*s  %s\n", width, row[0], row[1])
	}
	return sb.String()
}

// formatValue prints integers without a decimal point.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus writes the registry in Prometheus text exposition format
// (version 0.0.4): one # HELP/# TYPE block per metric name, histograms as
// cumulative _bucket{le=...} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	ms := r.sortedByName()
	lastName := ""
	for _, m := range ms {
		if m.name != lastName {
			if m.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind.promType())
			lastName = m.name
		}
		if m.kind == kindHistogram {
			writePromHistogram(w, m)
			continue
		}
		fmt.Fprintf(w, "%s%s %s\n", m.name, labelString(m.labels), formatValue(m.value()))
	}
}

// writePromHistogram emits the cumulative bucket series for one histogram.
// Empty buckets are elided (the series stays valid: le is cumulative and a
// trailing +Inf bucket always carries the total).
func writePromHistogram(w io.Writer, m *metric) {
	s := m.h.Snapshot()
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		labels := append(append([]Label{}, m.labels...), L("le", fmt.Sprintf("%d", bucketUpper(i))))
		fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, labelString(labels), cum)
	}
	inf := append(append([]Label{}, m.labels...), L("le", "+Inf"))
	fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, labelString(inf), s.Count)
	fmt.Fprintf(w, "%s_sum%s %d\n", m.name, labelString(m.labels), s.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", m.name, labelString(m.labels), s.Count)
}

// WriteVars writes the registry as a flat JSON object (expvar-style), keyed
// by series name; histograms render as {count, sum, p50, p90, p99}.
func (r *Registry) WriteVars(w io.Writer) error {
	ms := r.snapshot()
	vars := make(map[string]any, len(ms))
	for _, m := range ms {
		key := seriesKey(m.name, m.labels)
		switch m.kind {
		case kindHistogram:
			s := m.h.Snapshot()
			vars[key] = map[string]uint64{
				"count": s.Count,
				"sum":   s.Sum,
				"p50":   m.h.Quantile(0.50),
				"p90":   m.h.Quantile(0.90),
				"p99":   m.h.Quantile(0.99),
			}
		case kindGauge:
			vars[key] = map[string]int64{"value": m.g.Load(), "max": m.g.Max()}
		default:
			vars[key] = m.value()
		}
	}
	keys := make([]string, 0, len(vars))
	for k := range vars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Render with sorted keys for deterministic output.
	var sb strings.Builder
	sb.WriteString("{\n")
	for i, k := range keys {
		b, err := json.Marshal(vars[k])
		if err != nil {
			return err
		}
		fmt.Fprintf(&sb, "  %q: %s", k, b)
		if i < len(keys)-1 {
			sb.WriteString(",")
		}
		sb.WriteString("\n")
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// extraRoute is a caller-mounted handler (e.g. /debug/flight).
type extraRoute struct {
	pattern string
	h       http.Handler
}

// Handle mounts an additional handler on the stats mux built by Handler().
// Registering the same pattern again replaces the previous handler. Call it
// before Handler()/Serve(); later registrations only affect muxes built
// afterwards.
func (r *Registry) Handle(pattern string, h http.Handler) {
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.extra {
		if c.extra[i].pattern == pattern {
			c.extra[i].h = h
			return
		}
	}
	c.extra = append(c.extra, extraRoute{pattern: pattern, h: h})
}

// Handler returns an http.Handler serving /metrics (Prometheus text format),
// /debug/vars (JSON), the net/http/pprof profiler under /debug/pprof/, any
// routes mounted with Handle, and a tiny index at /.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteVars(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	r.core.mu.Lock()
	extra := append([]extraRoute(nil), r.core.extra...)
	r.core.mu.Unlock()
	for _, e := range extra {
		mux.Handle(e.pattern, e.h)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "opendesc stats: /metrics (Prometheus), /debug/vars (JSON), /debug/pprof/ (profiler)\n")
		for _, e := range extra {
			fmt.Fprintf(w, "extra: %s\n", e.pattern)
		}
	})
	return mux
}

// Serve starts an HTTP stats endpoint on addr in a background goroutine and
// returns the bound address (useful with ":0"). The listener runs until the
// process exits or the returned closer is closed.
func (r *Registry) Serve(addr string) (net.Addr, io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	go func() { _ = http.Serve(ln, r.Handler()) }()
	return ln.Addr(), ln, nil
}
