package obs

import (
	"fmt"
	"strings"
	"time"
)

// Trace is a lightweight span collector for a single pipeline run (e.g. one
// OpenDesc compilation: parse → sema → cfg → paths → select → codegen).
// A Trace is used by one goroutine; spans are recorded in start order.
type Trace struct {
	Name  string
	spans []*Span
	t0    time.Time
}

// Span is one timed, annotated pipeline stage.
type Span struct {
	Stage string
	Start time.Time
	Dur   time.Duration
	notes []spanNote
	done  bool
}

type spanNote struct {
	key string
	val string
}

// traceNow is the trace timestamp source. A package variable (not a Trace
// field) so tests can substitute a deterministic clock and assert exact
// durations instead of sleeping and hoping — the obs package is allowed to
// read the wall clock, but its tests must not depend on real time passing.
var traceNow = time.Now

// NewTrace starts a trace.
func NewTrace(name string) *Trace {
	return &Trace{Name: name, t0: traceNow()}
}

// Start opens a span for a stage. Spans may nest textually but are reported
// flat, in start order.
func (t *Trace) Start(stage string) *Span {
	s := &Span{Stage: stage, Start: traceNow()}
	t.spans = append(t.spans, s)
	return s
}

// Annotate attaches a key=value note to the span (values are stringified
// with %v). Returns the span for chaining.
func (s *Span) Annotate(key string, val any) *Span {
	s.notes = append(s.notes, spanNote{key: key, val: fmt.Sprintf("%v", val)})
	return s
}

// End closes the span. Ending twice is a no-op.
func (s *Span) End() {
	if !s.done {
		s.Dur = traceNow().Sub(s.Start)
		s.done = true
	}
}

// Spans returns the recorded spans in start order.
func (t *Trace) Spans() []*Span { return t.spans }

// Span returns the first span for a stage name, or nil.
func (t *Trace) Span(stage string) *Span {
	for _, s := range t.spans {
		if s.Stage == stage {
			return s
		}
	}
	return nil
}

// fmtDur renders a duration compactly. Sub-microsecond durations keep ns
// precision (they used to collapse to "0µs"), and the µs tier rounds to the
// nearest microsecond so values in [999.5µs, 1ms) promote to "1.000ms"
// instead of truncating to "999µs".
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	default:
		us := (d + 500*time.Nanosecond) / time.Microsecond
		switch {
		case us >= 1_000_000: // 999.9995ms+ rounds into the seconds tier
			return fmt.Sprintf("%.3fs", float64(us)/1e6)
		case us >= 1000:
			return fmt.Sprintf("%.3fms", float64(us)/1000)
		default:
			return fmt.Sprintf("%dµs", us)
		}
	}
}

// Report renders the span table: stage, duration, share of total, notes.
// Spans still open at report time are closed virtually — they display their
// elapsed-so-far duration tagged "(open)" rather than a misleading zero.
func (t *Trace) Report() string {
	now := traceNow()
	durs := make([]time.Duration, len(t.spans))
	var total time.Duration
	for i, s := range t.spans {
		durs[i] = s.Dur
		if !s.done {
			durs[i] = now.Sub(s.Start)
		}
		total += durs[i]
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %s: %d stages, total %s\n", t.Name, len(t.spans), fmtDur(total))
	width := len("stage")
	for _, s := range t.spans {
		if len(s.Stage) > width {
			width = len(s.Stage)
		}
	}
	for i, s := range t.spans {
		share := 0.0
		if total > 0 {
			share = 100 * float64(durs[i]) / float64(total)
		}
		fmt.Fprintf(&sb, "  %-*s  %10s  %5.1f%%", width, s.Stage, fmtDur(durs[i]), share)
		if !s.done {
			sb.WriteString("  (open)")
		}
		for _, n := range s.notes {
			fmt.Fprintf(&sb, "  %s=%s", n.key, n.val)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
