package obs

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

func TestCounterConcurrentExact(t *testing.T) {
	var c Counter
	const goroutines = 8
	const perG = 50000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterPadding(t *testing.T) {
	if sz := unsafe.Sizeof(Counter{}); sz != cacheLine {
		t.Errorf("Counter size = %d, want one cache line (%d)", sz, cacheLine)
	}
	if sz := unsafe.Sizeof(Gauge{}); sz != cacheLine {
		t.Errorf("Gauge size = %d, want one cache line (%d)", sz, cacheLine)
	}
}

func TestGaugeHighWater(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Set(12)
	g.Set(3)
	if g.Load() != 3 || g.Max() != 12 {
		t.Errorf("gauge = %d max %d, want 3 max 12", g.Load(), g.Max())
	}
	g.Add(20)
	if g.Load() != 23 || g.Max() != 23 {
		t.Errorf("gauge = %d max %d, want 23 max 23", g.Load(), g.Max())
	}
	g.Add(-10)
	if g.Load() != 13 || g.Max() != 23 {
		t.Errorf("gauge = %d max %d, want 13 max 23", g.Load(), g.Max())
	}
}

// quantileTruth returns the exact q-quantile of sorted vals using the same
// rank convention as Histogram.Quantile.
func quantileTruth(sorted []uint64, q float64) uint64 {
	rank := int(q*float64(len(sorted)-1)) + 1
	return sorted[rank-1]
}

func TestHistogramPercentilesWithinOneBucket(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(42))
	vals := make([]uint64, 0, 10000)
	for i := 0; i < 10000; i++ {
		// Log-uniform values spanning ns … tens of ms.
		v := uint64(1) << uint(rng.Intn(25))
		v += uint64(rng.Int63n(int64(v)))
		vals = append(vals, v)
		h.Observe(v)
	}
	// Sort a copy for ground truth.
	sorted := append([]uint64(nil), vals...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		truth := quantileTruth(sorted, q)
		got := h.Quantile(q)
		// The estimate must be the upper bound of the bucket holding the
		// truth: truth ≤ got < 2·truth+2 (one log2 bucket).
		if got < truth || got > 2*truth+1 {
			t.Errorf("q=%.2f: quantile = %d, truth %d (bucket bound violated)", q, got, truth)
		}
	}
	if h.Count() != 10000 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Observe(0)
	if h.Quantile(0.5) != 0 {
		t.Errorf("zero-only quantile = %d", h.Quantile(0.5))
	}
	h.Observe(^uint64(0))
	if got := h.Quantile(1); got != ^uint64(0) {
		t.Errorf("max quantile = %d", got)
	}
	if h.Count() != 2 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestRegistryIdempotentAndConcurrent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help", L("a", "1"))
	c2 := r.Counter("x_total", "other help", L("a", "1"))
	if c1 != c2 {
		t.Error("same series must return the same counter")
	}
	c3 := r.Counter("x_total", "help", L("a", "2"))
	if c1 == c3 {
		t.Error("different labels must create a new series")
	}
	// Concurrent registration + scrape must not race (run with -race).
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("y_total", "h", L("g", string(rune('a'+g)))).Inc()
				_ = r.Table()
			}
		}(g)
	}
	wg.Wait()
}

func TestTraceReport(t *testing.T) {
	tr := NewTrace("compile demo")
	for _, stage := range []string{"parse", "sema", "cfg", "paths", "select", "codegen"} {
		sp := tr.Start(stage)
		sp.Annotate("k", 7)
		sp.End()
	}
	rep := tr.Report()
	for _, stage := range []string{"parse", "sema", "cfg", "paths", "select", "codegen"} {
		if !strings.Contains(rep, stage) {
			t.Errorf("report missing stage %q:\n%s", stage, rep)
		}
	}
	if !strings.Contains(rep, "k=7") {
		t.Errorf("report missing annotation:\n%s", rep)
	}
	if tr.Span("cfg") == nil || tr.Span("nope") != nil {
		t.Error("Span lookup broken")
	}
	if len(tr.Spans()) != 6 {
		t.Errorf("spans = %d", len(tr.Spans()))
	}
}
