package obs

import (
	"math"
	"testing"
)

// TestSnapshotQuantileBucketBoundaries pins the snapshot quantile estimate
// at exact log2 bucket boundaries: a value v = 2^k lands in bucket k+1
// (bits.Len64), whose upper bound is 2^(k+1)−1, and a value 2^k−1 lands in
// bucket k with upper bound 2^k−1 (i.e. boundary values are reported
// exactly). Perf records export these numbers, so they must be pinned.
func TestSnapshotQuantileBucketBoundaries(t *testing.T) {
	cases := []struct {
		value uint64
		want  uint64 // Quantile(0.5) of a single-observation histogram
	}{
		{0, 0},                      // bucket 0 holds exactly zero
		{1, 1},                      // [1,1]
		{2, 3},                      // [2,3]
		{3, 3},                      // exact at the bucket's upper boundary
		{4, 7},                      // [4,7]
		{7, 7},                      // upper boundary again
		{1023, 1023},                // 2^10 − 1
		{1024, 2047},                // 2^10
		{1 << 62, 1<<63 - 1},        // top finite bucket below the last
		{math.MaxUint64, 1<<64 - 1}, /* ^uint64(0) */
	}
	for _, c := range cases {
		h := NewHistogram()
		h.Observe(c.value)
		s := h.Snapshot()
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := s.Quantile(q); got != c.want {
				t.Errorf("Observe(%d): snapshot q%.2f = %d, want %d", c.value, q, got, c.want)
			}
		}
		// The snapshot must agree with the live histogram's estimator.
		if live, snap := h.Quantile(0.99), s.Quantile(0.99); live != snap {
			t.Errorf("Observe(%d): live %d vs snapshot %d", c.value, live, snap)
		}
	}
}

// TestSnapshotQuantileEmpty: an empty histogram reports 0 (not NaN, not a
// panic) for every quantile, and mean 0.
func TestSnapshotQuantileEmpty(t *testing.T) {
	s := NewHistogram().Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty snapshot q%.2f = %d, want 0", q, got)
		}
	}
	if m := s.Mean(); m != 0 || math.IsNaN(m) {
		t.Errorf("empty snapshot mean = %v, want 0", m)
	}
}

// TestSnapshotQuantileRanks checks rank selection across buckets: with 99
// observations of 1 and one of 1024, p50 must sit in the low bucket and
// p100 in the high one; p99 picks the 100th-ranked observation per the
// rank = floor(q·(n−1))+1 convention.
func TestSnapshotQuantileRanks(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 99; i++ {
		h.Observe(1)
	}
	h.Observe(1024)
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %d, want 1", got)
	}
	if got := s.Quantile(1); got != 2047 {
		t.Errorf("p100 = %d, want 2047 (bucket upper of 1024)", got)
	}
	// rank(0.99) = floor(0.99·99)+1 = 99 → still the low bucket.
	if got := s.Quantile(0.99); got != 1 {
		t.Errorf("p99 = %d, want 1", got)
	}
	// Out-of-range q clamps instead of misbehaving.
	if s.Quantile(-1) != s.Quantile(0) || s.Quantile(2) != s.Quantile(1) {
		t.Error("out-of-range q did not clamp")
	}
	if m := s.Mean(); math.Abs(m-(99+1024)/100.0) > 1e-9 {
		t.Errorf("mean = %v, want %v", m, (99+1024)/100.0)
	}
}

// TestSnapshotMatchesLiveUnderLoad: the snapshot is a frozen copy — its
// quantiles must be stable while the live histogram keeps moving.
func TestSnapshotMatchesLiveUnderLoad(t *testing.T) {
	h := NewHistogram()
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	p99 := s.Quantile(0.99)
	for i := 0; i < 10000; i++ {
		h.Observe(1 << 40) // shove the live p99 far right
	}
	if got := s.Quantile(0.99); got != p99 {
		t.Errorf("frozen snapshot p99 moved: %d → %d", p99, got)
	}
	if live := h.Quantile(0.99); live <= p99 {
		t.Errorf("live p99 = %d, want > %d after heavy right tail", live, p99)
	}
}

// TestSnapshotMerge: merging two snapshots equals observing both series
// into one histogram — bucket-wise, and Count/Sum reconcile.
func TestSnapshotMerge(t *testing.T) {
	a, b, both := NewHistogram(), NewHistogram(), NewHistogram()
	for i := uint64(1); i <= 500; i++ {
		a.Observe(i)
		both.Observe(i)
	}
	for i := uint64(1000); i <= 1100; i++ {
		b.Observe(i)
		both.Observe(i)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	want := both.Snapshot()
	if m != want {
		t.Fatalf("merge mismatch:\n got  %+v\n want %+v", m, want)
	}
	if m.Count != a.Snapshot().Count+b.Snapshot().Count {
		t.Errorf("merged count %d, want %d", m.Count, a.Snapshot().Count+b.Snapshot().Count)
	}
	if m.Sum != a.Snapshot().Sum+b.Snapshot().Sum {
		t.Errorf("merged sum %d, want %d", m.Sum, a.Snapshot().Sum+b.Snapshot().Sum)
	}
	// Quantiles of the merge match the combined histogram exactly (same
	// buckets, same ranks).
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if m.Quantile(q) != want.Quantile(q) {
			t.Errorf("q%.2f: merged %d, combined %d", q, m.Quantile(q), want.Quantile(q))
		}
	}
}

// TestSnapshotMergeReconciles: Count is recomputed from the merged buckets,
// so a hand-built (lying) input cannot produce an inconsistent merge — the
// property fleet rollups rely on when aggregating untrusted host reports.
func TestSnapshotMergeReconciles(t *testing.T) {
	var lying HistogramSnapshot
	lying.Buckets[3] = 7
	lying.Count = 9999 // inconsistent with the buckets
	lying.Sum = 42
	m := lying.Merge(HistogramSnapshot{})
	if m.Count != 7 {
		t.Errorf("merged count %d, want 7 (recomputed from buckets)", m.Count)
	}
	if m.Sum != 42 {
		t.Errorf("merged sum %d, want 42", m.Sum)
	}
	// Merging empties is the identity on an honest snapshot.
	h := NewHistogram()
	h.Observe(5)
	h.Observe(300)
	s := h.Snapshot()
	if got := s.Merge(HistogramSnapshot{}); got != s {
		t.Errorf("identity merge changed the snapshot: %+v vs %+v", got, s)
	}
}
