// Package parser implements a recursive-descent parser for the P4-16 subset
// used by OpenDesc interface descriptions.
//
// Supported constructs: header/struct/typedef/const/enum/extern declarations,
// templated parsers with select-based state machines, templated controls with
// actions and apply blocks, annotations (@semantic, @cost, @context, ...),
// width-prefixed literals, bit slices, casts to base types, and the full
// expression grammar with P4 precedence.
//
// The parser accumulates diagnostics instead of stopping at the first error
// and re-synchronizes at the next top-level declaration.
package parser

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"opendesc/internal/p4/ast"
	"opendesc/internal/p4/lexer"
	"opendesc/internal/p4/token"
)

// Error is a parse diagnostic.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList aggregates diagnostics into a single error value.
type ErrorList []*Error

func (el ErrorList) Error() string {
	switch len(el) {
	case 0:
		return "no errors"
	case 1:
		return el[0].Error()
	}
	var sb strings.Builder
	sb.WriteString(el[0].Error())
	fmt.Fprintf(&sb, " (and %d more errors)", len(el)-1)
	return sb.String()
}

// Err returns the list as an error, or nil if empty.
func (el ErrorList) Err() error {
	if len(el) == 0 {
		return nil
	}
	return el
}

// Parse parses a single P4 source buffer.
func Parse(file, src string) (*ast.Program, error) {
	p := newParser(file, src)
	prog := p.parseProgram()
	return prog, p.errs.Err()
}

// MustParse parses src and panics on error; intended for embedded,
// compile-time-known descriptions.
func MustParse(file, src string) *ast.Program {
	prog, err := Parse(file, src)
	if err != nil {
		panic(fmt.Sprintf("p4 parse %s: %v", file, err))
	}
	return prog
}

type parser struct {
	lex  *lexer.Lexer
	tok  token.Token // current token
	peek token.Token // one-token lookahead
	errs ErrorList
}

// bailout is used for per-declaration panic recovery on hard errors.
type bailout struct{}

func newParser(file, src string) *parser {
	p := &parser{lex: lexer.New(file, src)}
	p.tok = p.lex.Next()
	p.peek = p.lex.Next()
	return p
}

func (p *parser) next() {
	p.tok = p.peek
	p.peek = p.lex.Next()
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	if len(p.errs) < 50 {
		p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

// fail records an error and unwinds to the nearest recovery point.
func (p *parser) fail(pos token.Pos, format string, args ...any) {
	p.errorf(pos, format, args...)
	panic(bailout{})
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.tok.Kind != k {
		p.fail(p.tok.Pos, "expected %s, found %s", k, p.tok)
	}
	t := p.tok
	p.next()
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectIdent() token.Token {
	if p.tok.Kind != token.IDENT {
		p.fail(p.tok.Pos, "expected identifier, found %s", p.tok)
	}
	t := p.tok
	p.next()
	return t
}

// sync skips tokens until the start of the next plausible top-level
// declaration.
func (p *parser) sync() {
	for {
		switch p.tok.Kind {
		case token.EOF, token.HEADER, token.STRUCT, token.TYPEDEF, token.CONST,
			token.ENUM, token.PARSER, token.CONTROL, token.EXTERN, token.PACKAGE:
			return
		}
		p.next()
	}
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{File: p.tok.Pos.File}
	for p.tok.Kind != token.EOF {
		d := p.parseTopDecl()
		if d != nil {
			prog.Decls = append(prog.Decls, d)
		}
	}
	return prog
}

// parseTopDecl parses one top-level declaration with panic-based recovery.
func (p *parser) parseTopDecl() (d ast.Decl) {
	start := p.tok
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
			d = nil
			// Guarantee progress: if the failure happened on the very first
			// token of the declaration, sync() would stop right there and the
			// driver loop would never advance.
			if p.tok.Kind == start.Kind && p.tok.Pos == start.Pos && p.tok.Kind != token.EOF {
				p.next()
			}
			p.sync()
		}
	}()
	annots := p.parseAnnotations()
	switch p.tok.Kind {
	case token.HEADER:
		return p.parseHeader(annots)
	case token.STRUCT:
		return p.parseStruct(annots)
	case token.TYPEDEF:
		return p.parseTypedef()
	case token.CONST:
		return p.parseConst()
	case token.ENUM:
		return p.parseEnum()
	case token.PARSER:
		return p.parseParser(annots)
	case token.CONTROL:
		return p.parseControl(annots)
	case token.EXTERN:
		return p.parseExtern(annots)
	case token.PACKAGE:
		p.skipPackage()
		return nil
	default:
		p.fail(p.tok.Pos, "expected declaration, found %s", p.tok)
		return nil
	}
}

// skipPackage consumes a `package ...;` declaration (ignored by OpenDesc).
func (p *parser) skipPackage() {
	for p.tok.Kind != token.SEMI && p.tok.Kind != token.EOF {
		p.next()
	}
	p.accept(token.SEMI)
}

func (p *parser) parseAnnotations() ast.Annotations {
	var as ast.Annotations
	for p.tok.Kind == token.AT {
		at := p.tok.Pos
		p.next()
		name := p.expectIdent().Lit
		a := &ast.Annotation{AtPos: at, Name: name}
		if p.accept(token.LPAREN) {
			for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
				a.Args = append(a.Args, p.parseExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
		}
		as = append(as, a)
	}
	return as
}

func (p *parser) parseHeader(annots ast.Annotations) *ast.HeaderDecl {
	pos := p.expect(token.HEADER).Pos
	name := p.expectIdent().Lit
	h := &ast.HeaderDecl{HeaderPos: pos, Name: name, Annots: annots}
	p.expect(token.LBRACE)
	h.Fields = p.parseFields()
	p.expect(token.RBRACE)
	return h
}

func (p *parser) parseStruct(annots ast.Annotations) *ast.StructDecl {
	pos := p.expect(token.STRUCT).Pos
	name := p.expectIdent().Lit
	s := &ast.StructDecl{StructPos: pos, Name: name, Annots: annots}
	p.expect(token.LBRACE)
	s.Fields = p.parseFields()
	p.expect(token.RBRACE)
	return s
}

func (p *parser) parseFields() []*ast.Field {
	var fields []*ast.Field
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		annots := p.parseAnnotations()
		typ := p.parseType()
		nameTok := p.expectIdent()
		p.expect(token.SEMI)
		fields = append(fields, &ast.Field{
			NamePos: nameTok.Pos,
			Name:    nameTok.Lit,
			Type:    typ,
			Annots:  annots,
		})
	}
	return fields
}

func (p *parser) parseTypedef() *ast.TypedefDecl {
	pos := p.expect(token.TYPEDEF).Pos
	typ := p.parseType()
	name := p.expectIdent().Lit
	p.expect(token.SEMI)
	return &ast.TypedefDecl{TypedefPos: pos, Name: name, Type: typ}
}

func (p *parser) parseConst() *ast.ConstDecl {
	pos := p.expect(token.CONST).Pos
	typ := p.parseType()
	name := p.expectIdent().Lit
	p.expect(token.ASSIGN)
	val := p.parseExpr()
	p.expect(token.SEMI)
	return &ast.ConstDecl{ConstPos: pos, Name: name, Type: typ, Value: val}
}

func (p *parser) parseEnum() *ast.EnumDecl {
	pos := p.expect(token.ENUM).Pos
	e := &ast.EnumDecl{EnumPos: pos}
	if p.tok.Kind == token.BIT || p.tok.Kind == token.INT_T {
		e.Base = p.parseType()
	}
	e.Name = p.expectIdent().Lit
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		m := &ast.EnumMember{NamePos: p.tok.Pos, Name: p.expectIdent().Lit}
		if p.accept(token.ASSIGN) {
			m.Value = p.parseExpr()
		}
		e.Members = append(e.Members, m)
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RBRACE)
	return e
}

func (p *parser) parseExtern(annots ast.Annotations) *ast.ExternDecl {
	pos := p.expect(token.EXTERN).Pos
	name := p.expectIdent().Lit
	d := &ast.ExternDecl{ExternPos: pos, Name: name, Annots: annots}
	// Skip optional body or signature; externs are opaque to OpenDesc.
	if p.accept(token.LBRACE) {
		depth := 1
		for depth > 0 && p.tok.Kind != token.EOF {
			switch p.tok.Kind {
			case token.LBRACE:
				depth++
			case token.RBRACE:
				depth--
			}
			p.next()
		}
	} else {
		for p.tok.Kind != token.SEMI && p.tok.Kind != token.EOF {
			p.next()
		}
		p.accept(token.SEMI)
	}
	return d
}

func (p *parser) parseTypeParams() []*ast.TypeParam {
	if p.tok.Kind != token.LANGLE {
		return nil
	}
	p.next()
	var tps []*ast.TypeParam
	for {
		t := p.expectIdent()
		tps = append(tps, &ast.TypeParam{NamePos: t.Pos, Name: t.Lit})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RANGLE)
	return tps
}

func (p *parser) parseParams() []*ast.Param {
	p.expect(token.LPAREN)
	var params []*ast.Param
	for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
		annots := p.parseAnnotations()
		dir := ast.DirNone
		switch p.tok.Kind {
		case token.IN:
			dir = ast.DirIn
			p.next()
		case token.OUT:
			dir = ast.DirOut
			p.next()
		case token.INOUT:
			dir = ast.DirInOut
			p.next()
		}
		typ := p.parseType()
		nameTok := p.expectIdent()
		params = append(params, &ast.Param{
			NamePos: nameTok.Pos, Dir: dir, Type: typ, Name: nameTok.Lit, Annots: annots,
		})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	return params
}

func (p *parser) parseParser(annots ast.Annotations) *ast.ParserDecl {
	pos := p.expect(token.PARSER).Pos
	name := p.expectIdent().Lit
	d := &ast.ParserDecl{ParserPos: pos, Name: name, Annots: annots}
	d.TypeParams = p.parseTypeParams()
	d.Params = p.parseParams()
	if p.tok.Kind == token.SEMI {
		// Parser type declaration (prototype) — no body.
		p.next()
		return d
	}
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		if p.tok.Kind == token.STATE {
			d.States = append(d.States, p.parseState())
		} else {
			d.Locals = append(d.Locals, p.parseLocalDecl())
		}
	}
	p.expect(token.RBRACE)
	return d
}

func (p *parser) parseState() *ast.ParserState {
	pos := p.expect(token.STATE).Pos
	name := p.expectIdent().Lit
	s := &ast.ParserState{StatePos: pos, Name: name}
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		if p.tok.Kind == token.TRANSITION {
			s.Transition = p.parseTransition()
			break
		}
		s.Stmts = append(s.Stmts, p.parseStmt())
	}
	p.expect(token.RBRACE)
	return s
}

func (p *parser) parseTransition() ast.Transition {
	pos := p.expect(token.TRANSITION).Pos
	if p.tok.Kind == token.SELECT {
		p.next()
		t := &ast.SelectTransition{TransPos: pos}
		p.expect(token.LPAREN)
		for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
			t.Exprs = append(t.Exprs, p.parseExpr())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
		p.expect(token.LBRACE)
		for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
			t.Cases = append(t.Cases, p.parseSelectCase())
		}
		p.expect(token.RBRACE)
		p.accept(token.SEMI) // trailing semicolon is optional after select
		return t
	}
	target := p.expectIdent().Lit
	p.expect(token.SEMI)
	return &ast.DirectTransition{TransPos: pos, Target: target}
}

func (p *parser) parseSelectCase() *ast.SelectCase {
	c := &ast.SelectCase{CasePos: p.tok.Pos}
	if p.tok.Kind == token.DEFAULT {
		p.next()
		c.IsDefault = true
	} else if p.accept(token.LPAREN) {
		// Tuple key: (k1, k2, ...)
		for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
			c.Keys = append(c.Keys, p.parseSelectKey())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
	} else {
		c.Keys = append(c.Keys, p.parseSelectKey())
	}
	p.expect(token.COLON)
	c.Target = p.expectIdent().Lit
	p.expect(token.SEMI)
	return c
}

// parseSelectKey parses one select key: `_`, a literal/const expression, or a
// range `lo..hi`.
func (p *parser) parseSelectKey() ast.Expr {
	if p.tok.Kind == token.IDENT && p.tok.Lit == "_" {
		e := &ast.DontCare{UnderscorePos: p.tok.Pos}
		p.next()
		return e
	}
	e := p.parseExpr()
	if p.accept(token.DOTDOT) {
		hi := p.parseExpr()
		return &ast.RangeExpr{Lo: e, Hi: hi}
	}
	return e
}

func (p *parser) parseControl(annots ast.Annotations) *ast.ControlDecl {
	pos := p.expect(token.CONTROL).Pos
	name := p.expectIdent().Lit
	d := &ast.ControlDecl{ControlPos: pos, Name: name, Annots: annots}
	d.TypeParams = p.parseTypeParams()
	d.Params = p.parseParams()
	if p.tok.Kind == token.SEMI {
		p.next()
		return d
	}
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.APPLY:
			p.next()
			d.Apply = p.parseBlock()
		case token.ACTION:
			d.Actions = append(d.Actions, p.parseAction())
		default:
			d.Locals = append(d.Locals, p.parseLocalDecl())
		}
	}
	p.expect(token.RBRACE)
	return d
}

func (p *parser) parseAction() *ast.ActionDecl {
	pos := p.expect(token.ACTION).Pos
	name := p.expectIdent().Lit
	a := &ast.ActionDecl{ActionPos: pos, Name: name}
	a.Params = p.parseParams()
	a.Body = p.parseBlock()
	return a
}

// parseLocalDecl parses a local declaration inside a parser or control body:
// `const T n = e;` or `T n [= e];`.
func (p *parser) parseLocalDecl() ast.Decl {
	if p.tok.Kind == token.CONST {
		return p.parseConst()
	}
	pos := p.tok.Pos
	typ := p.parseType()
	name := p.expectIdent().Lit
	v := &ast.VarDecl{TypePos: pos, Type: typ, Name: name}
	if p.accept(token.ASSIGN) {
		v.Init = p.parseExpr()
	}
	p.expect(token.SEMI)
	return v
}

// ---- Statements ----

func (p *parser) parseBlock() *ast.BlockStmt {
	lb := p.expect(token.LBRACE).Pos
	b := &ast.BlockStmt{LBrace: lb}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.tok.Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.IF:
		return p.parseIf()
	case token.SWITCH:
		return p.parseSwitch()
	case token.RETURN:
		pos := p.tok.Pos
		p.next()
		p.expect(token.SEMI)
		return &ast.ReturnStmt{ReturnPos: pos}
	case token.SEMI:
		pos := p.tok.Pos
		p.next()
		return &ast.EmptyStmt{SemiPos: pos}
	case token.CONST:
		return &ast.DeclStmt{Decl: p.parseConst()}
	case token.BIT, token.INT_T, token.BOOL, token.VARBIT:
		return &ast.DeclStmt{Decl: p.parseLocalDecl()}
	case token.IDENT:
		// Could be a VarDecl (`T name ...`) or an expression statement.
		if p.peek.Kind == token.IDENT {
			return &ast.DeclStmt{Decl: p.parseLocalDecl()}
		}
		return p.parseSimpleStmt()
	default:
		return p.parseSimpleStmt()
	}
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.expect(token.IF).Pos
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseStmtAsBlock()
	s := &ast.IfStmt{IfPos: pos, Cond: cond, Then: then}
	if p.accept(token.ELSE) {
		if p.tok.Kind == token.IF {
			s.Else = p.parseIf()
		} else {
			s.Else = p.parseStmtAsBlock()
		}
	}
	return s
}

// parseStmtAsBlock parses a block, or wraps a single statement in one so the
// CFG builder deals only with blocks.
func (p *parser) parseStmtAsBlock() *ast.BlockStmt {
	if p.tok.Kind == token.LBRACE {
		return p.parseBlock()
	}
	s := p.parseStmt()
	return &ast.BlockStmt{LBrace: s.Pos(), Stmts: []ast.Stmt{s}}
}

func (p *parser) parseSwitch() ast.Stmt {
	pos := p.expect(token.SWITCH).Pos
	p.expect(token.LPAREN)
	tag := p.parseExpr()
	p.expect(token.RPAREN)
	s := &ast.SwitchStmt{SwitchPos: pos, Tag: tag}
	p.expect(token.LBRACE)
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		c := &ast.SwitchCase{CasePos: p.tok.Pos}
		if p.tok.Kind == token.DEFAULT {
			p.next()
			c.IsDefault = true
		} else {
			for {
				c.Keys = append(c.Keys, p.parseExpr())
				// `case a: case b:` fallthrough-style labels are normalized
				// into a single multi-key case.
				if p.tok.Kind == token.COLON && p.peek.Kind != token.LBRACE {
					break
				}
				if !p.accept(token.COMMA) {
					break
				}
			}
		}
		p.expect(token.COLON)
		c.Body = p.parseBlock()
		s.Cases = append(s.Cases, c)
	}
	p.expect(token.RBRACE)
	return s
}

// parseSimpleStmt parses assignment and call statements.
func (p *parser) parseSimpleStmt() ast.Stmt {
	lhs := p.parseExpr()
	switch p.tok.Kind {
	case token.ASSIGN:
		p.next()
		rhs := p.parseExpr()
		p.expect(token.SEMI)
		return &ast.AssignStmt{LHS: lhs, RHS: rhs}
	case token.SEMI:
		p.next()
		if call, ok := lhs.(*ast.CallExpr); ok {
			return &ast.CallStmt{Call: call}
		}
		p.errorf(lhs.Pos(), "expression statement must be a call")
		return &ast.EmptyStmt{SemiPos: lhs.Pos()}
	default:
		p.fail(p.tok.Pos, "expected '=' or ';' in statement, found %s", p.tok)
		return nil
	}
}

// ---- Types ----

func (p *parser) parseType() ast.Type {
	switch p.tok.Kind {
	case token.BIT:
		pos := p.tok.Pos
		p.next()
		p.expect(token.LANGLE)
		w := p.parseWidthExpr()
		p.expect(token.RANGLE)
		return &ast.BitType{BitPos: pos, Width: w}
	case token.INT_T:
		pos := p.tok.Pos
		p.next()
		if p.accept(token.LANGLE) {
			w := p.parseWidthExpr()
			p.expect(token.RANGLE)
			return &ast.IntType{IntPos: pos, Width: w}
		}
		// `int` without width is an arbitrary-precision integer in P4;
		// model it as int<32> which suffices for descriptor contexts.
		return &ast.IntType{IntPos: pos, Width: &ast.IntLit{LitPos: pos, Value: 32, Text: "32"}}
	case token.BOOL:
		pos := p.tok.Pos
		p.next()
		return &ast.BoolType{BoolPos: pos}
	case token.VARBIT:
		pos := p.tok.Pos
		p.next()
		p.expect(token.LANGLE)
		w := p.parseWidthExpr()
		p.expect(token.RANGLE)
		return &ast.VarbitType{VarbitPos: pos, MaxWidth: w}
	case token.VOID:
		pos := p.tok.Pos
		p.next()
		return &ast.VoidType{VoidPos: pos}
	case token.IDENT:
		t := p.expectIdent()
		nt := &ast.NamedType{NamePos: t.Pos, Name: t.Lit}
		// Type arguments in type position are unambiguous.
		if p.tok.Kind == token.LANGLE {
			p.next()
			for {
				nt.TypeArgs = append(nt.TypeArgs, p.parseType())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RANGLE)
		}
		return nt
	default:
		p.fail(p.tok.Pos, "expected type, found %s", p.tok)
		return nil
	}
}

// ---- Expressions ----

func (p *parser) parseExpr() ast.Expr {
	return p.parseTernary()
}

// parseWidthExpr parses the width expression inside bit< >, int< > and
// varbit< >. Comparison and shift operators are excluded so the closing '>'
// is never mistaken for greater-than; arithmetic (+, -, *, /, %) remains
// available for widths like bit<WORD*8>.
func (p *parser) parseWidthExpr() ast.Expr {
	return p.parseBinary(token.PLUS.Precedence())
}

func (p *parser) parseTernary() ast.Expr {
	cond := p.parseBinary(1)
	if p.accept(token.QUESTION) {
		then := p.parseExpr()
		p.expect(token.COLON)
		els := p.parseExpr()
		return &ast.TernaryExpr{Cond: cond, Then: then, Else: els}
	}
	return cond
}

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		prec := p.tok.Kind.Precedence()
		if prec < minPrec || prec == 0 {
			return x
		}
		op := p.tok.Kind
		p.next()
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{Op: op, X: x, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.tok.Kind {
	case token.NOT, token.TILDE, token.MINUS:
		pos := p.tok.Pos
		op := p.tok.Kind
		p.next()
		x := p.parseUnary()
		return &ast.UnaryExpr{OpPos: pos, Op: op, X: x}
	case token.LPAREN:
		// Cast to a base type: (bit<8>) x. Only base types are cast targets
		// in the subset, which keeps `(expr)` unambiguous.
		switch p.peek.Kind {
		case token.BIT, token.INT_T, token.BOOL, token.VARBIT:
			lp := p.tok.Pos
			p.next()
			typ := p.parseType()
			p.expect(token.RPAREN)
			x := p.parseUnary()
			return &ast.CastExpr{LParen: lp, Type: typ, X: x}
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.tok.Kind {
		case token.DOT:
			p.next()
			// Allow keyword-like members (e.g. `apply`).
			var member string
			if p.tok.Kind == token.IDENT || p.tok.Kind.IsKeyword() {
				member = p.tok.Lit
				if member == "" {
					member = p.tok.Kind.String()
				}
				p.next()
			} else {
				p.fail(p.tok.Pos, "expected member name after '.', found %s", p.tok)
			}
			x = &ast.MemberExpr{X: x, Member: member}
		case token.LBRACKET:
			p.next()
			first := p.parseExpr()
			if p.accept(token.COLON) {
				lo := p.parseExpr()
				p.expect(token.RBRACKET)
				x = &ast.SliceExpr{X: x, Hi: first, Lo: lo}
			} else {
				p.expect(token.RBRACKET)
				x = &ast.IndexExpr{X: x, Index: first}
			}
		case token.LPAREN:
			p.next()
			call := &ast.CallExpr{Fun: x}
			for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
				call.Args = append(call.Args, p.parseExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
			x = call
		default:
			return x
		}
	}
}

func (p *parser) parsePrimary() ast.Expr {
	switch p.tok.Kind {
	case token.IDENT:
		t := p.tok
		p.next()
		return &ast.Ident{NamePos: t.Pos, Name: t.Lit}
	case token.INT:
		t := p.tok
		p.next()
		v, err := parseIntText(t.Lit)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q: %v", t.Lit, err)
		}
		return &ast.IntLit{LitPos: t.Pos, Value: v, Text: t.Lit}
	case token.WIDTHINT:
		t := p.tok
		p.next()
		lit, err := parseWidthInt(t.Lit)
		if err != nil {
			p.errorf(t.Pos, "invalid width-prefixed literal %q: %v", t.Lit, err)
			return &ast.IntLit{LitPos: t.Pos, Text: t.Lit}
		}
		lit.LitPos = t.Pos
		return lit
	case token.STRING:
		t := p.tok
		p.next()
		return &ast.StringLit{LitPos: t.Pos, Value: t.Lit}
	case token.TRUE:
		t := p.tok
		p.next()
		return &ast.BoolLit{LitPos: t.Pos, Value: true}
	case token.FALSE:
		t := p.tok
		p.next()
		return &ast.BoolLit{LitPos: t.Pos, Value: false}
	case token.DEFAULT:
		// `default` may appear as an expression in select contexts.
		t := p.tok
		p.next()
		return &ast.Ident{NamePos: t.Pos, Name: "default"}
	case token.LPAREN:
		lp := p.tok.Pos
		p.next()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.ParenExpr{LParen: lp, X: x}
	default:
		p.fail(p.tok.Pos, "expected expression, found %s", p.tok)
		return nil
	}
}

// parseIntText parses decimal/hex/binary/octal integers with optional '_'
// separators.
func parseIntText(s string) (uint64, error) {
	s = strings.ReplaceAll(s, "_", "")
	if len(s) > 2 && s[0] == '0' {
		switch s[1] {
		case 'x', 'X':
			return strconv.ParseUint(s[2:], 16, 64)
		case 'b', 'B':
			return strconv.ParseUint(s[2:], 2, 64)
		case 'o', 'O':
			return strconv.ParseUint(s[2:], 8, 64)
		}
	}
	return strconv.ParseUint(s, 10, 64)
}

// parseWidthInt parses P4 width-prefixed literals such as 8w0x1F or 4s7.
func parseWidthInt(s string) (*ast.IntLit, error) {
	i := strings.IndexAny(s, "ws")
	if i <= 0 {
		return nil, errors.New("missing width prefix")
	}
	width, err := strconv.Atoi(s[:i])
	if err != nil {
		return nil, fmt.Errorf("bad width: %w", err)
	}
	if width <= 0 || width > 64 {
		return nil, fmt.Errorf("unsupported width %d (1..64)", width)
	}
	signed := s[i] == 's'
	v, err := parseIntText(s[i+1:])
	if err != nil {
		return nil, err
	}
	if width < 64 && v > (uint64(1)<<width)-1 {
		return nil, fmt.Errorf("value %d does not fit in %d bits", v, width)
	}
	return &ast.IntLit{Value: v, Width: width, Signed: signed, Text: s}, nil
}
