package parser

import (
	"strings"
	"testing"

	"opendesc/internal/p4/ast"
	"opendesc/internal/p4/token"
)

const e1000Deparser = `
struct e1000_rx_ctx_t {
    bit<1> use_rss;
}

header rss_cmpt_t {
    @semantic("rss")
    bit<32> rss_val;
}

header csum_cmpt_t {
    @semantic("ip_id")
    bit<16> ip_id;
    @semantic("ip_checksum")
    bit<16> csum;
}

control CmptDeparser<C2H_CTX_T, DESC_T, META_T>(
    cmpt_out cmpt_out,
    in C2H_CTX_T ctx,
    in DESC_T desc_hdr,
    in META_T pipe_meta)
{
    apply {
        if (ctx.use_rss == 1) {
            cmpt_out.emit(pipe_meta.rss);
        } else {
            cmpt_out.emit(pipe_meta.ip_id);
            cmpt_out.emit(pipe_meta.csum);
        }
    }
}
`

func TestParseE1000Deparser(t *testing.T) {
	prog, err := Parse("e1000.p4", e1000Deparser)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Decls) != 4 {
		t.Fatalf("got %d decls, want 4", len(prog.Decls))
	}
	ctl := prog.Control("CmptDeparser")
	if ctl == nil {
		t.Fatal("CmptDeparser not found")
	}
	if len(ctl.TypeParams) != 3 {
		t.Errorf("type params = %d, want 3", len(ctl.TypeParams))
	}
	if len(ctl.Params) != 4 {
		t.Errorf("params = %d, want 4", len(ctl.Params))
	}
	if ctl.Params[1].Dir != ast.DirIn {
		t.Errorf("ctx dir = %v, want in", ctl.Params[1].Dir)
	}
	if ctl.Apply == nil || len(ctl.Apply.Stmts) != 1 {
		t.Fatal("apply block missing or wrong arity")
	}
	ifs, ok := ctl.Apply.Stmts[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("apply stmt is %T, want IfStmt", ctl.Apply.Stmts[0])
	}
	if ifs.Else == nil {
		t.Error("else branch missing")
	}
	cond, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQ {
		t.Fatalf("condition = %s", ast.Sprint(ifs.Cond))
	}
	if path := cond.X.(*ast.MemberExpr).Path(); path != "ctx.use_rss" {
		t.Errorf("condition path = %q", path)
	}
}

func TestParseHeaderAnnotations(t *testing.T) {
	prog, err := Parse("t.p4", `
header intent_t {
    @semantic("rss") @cost(12)
    bit<32> rss_val;
    @semantic("vlan")
    bit<16> vlan_tag;
    bit<8> plain;
}`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	h := prog.Header("intent_t")
	if h == nil {
		t.Fatal("header not found")
	}
	if len(h.Fields) != 3 {
		t.Fatalf("fields = %d", len(h.Fields))
	}
	sem, ok := h.Fields[0].Semantic()
	if !ok || sem != "rss" {
		t.Errorf("field 0 semantic = %q, %v", sem, ok)
	}
	if c, ok := h.Fields[0].Annots.Get("cost").IntArg(0); !ok || c != 12 {
		t.Errorf("cost = %d, %v", c, ok)
	}
	if _, ok := h.Fields[2].Semantic(); ok {
		t.Error("plain field should have no semantic")
	}
}

func TestParseParserStates(t *testing.T) {
	prog, err := Parse("t.p4", `
parser DescParser<H2C_CTX_T, DESC_T>(
    desc_in desc_in,
    in H2C_CTX_T h2c_ctx,
    out DESC_T desc_hdr)
{
    state start {
        transition select(h2c_ctx.desc_size) {
            8: parse_small;
            16: parse_large;
            0x20 .. 0x40: parse_huge;
            default: reject;
        }
    }
    state parse_small {
        desc_in.extract(desc_hdr.base);
        transition accept;
    }
    state parse_large {
        desc_in.extract(desc_hdr.base);
        desc_in.extract(desc_hdr.ext);
        transition accept;
    }
    state parse_huge {
        transition accept;
    }
}`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pr := prog.Parser("DescParser")
	if pr == nil {
		t.Fatal("parser not found")
	}
	if len(pr.States) != 4 {
		t.Fatalf("states = %d, want 4", len(pr.States))
	}
	st := pr.State("start")
	sel, ok := st.Transition.(*ast.SelectTransition)
	if !ok {
		t.Fatalf("start transition is %T", st.Transition)
	}
	if len(sel.Cases) != 4 {
		t.Fatalf("select cases = %d, want 4", len(sel.Cases))
	}
	if !sel.Cases[3].IsDefault {
		t.Error("last case should be default")
	}
	if _, ok := sel.Cases[2].Keys[0].(*ast.RangeExpr); !ok {
		t.Errorf("case 2 key is %T, want RangeExpr", sel.Cases[2].Keys[0])
	}
	small := pr.State("parse_small")
	if len(small.Stmts) != 1 {
		t.Fatalf("parse_small stmts = %d", len(small.Stmts))
	}
	call, ok := small.Stmts[0].(*ast.CallStmt)
	if !ok {
		t.Fatalf("stmt is %T", small.Stmts[0])
	}
	if _, name := call.Call.Callee(); name != "extract" {
		t.Errorf("callee = %q", name)
	}
}

func TestParseConstTypedefEnum(t *testing.T) {
	prog, err := Parse("t.p4", `
const bit<16> ETHERTYPE_VLAN = 0x8100;
typedef bit<48> mac_addr_t;
enum bit<2> cqe_format_t {
    FULL = 0,
    COMPRESSED = 1,
    MINI = 2
}
enum color_t { RED, GREEN, BLUE }
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Decls) != 4 {
		t.Fatalf("decls = %d", len(prog.Decls))
	}
	e := prog.Decls[2].(*ast.EnumDecl)
	if e.Base == nil || len(e.Members) != 3 {
		t.Errorf("serializable enum malformed: %+v", e)
	}
	plain := prog.Decls[3].(*ast.EnumDecl)
	if plain.Base != nil || len(plain.Members) != 3 {
		t.Errorf("plain enum malformed: %+v", plain)
	}
	if plain.Members[1].Value != nil {
		t.Error("plain enum member should have no explicit value")
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []struct {
		src  string
		want string // canonical printing
	}{
		{"a + b * c", "a + b * c"},
		{"(a + b) * c", "(a + b) * c"},
		{"a == 1 && b != 2", "a == 1 && b != 2"},
		{"x[15:8]", "x[15:8]"},
		{"~a & 0xFF", "~a & 0xFF"},
		{"cond ? x : y", "cond ? x : y"},
		{"(bit<8>) v", "(bit<8>) v"},
		{"a ++ b", "a ++ b"},
		{"f(x, y.z)", "f(x, y.z)"},
		{"8w0xFF", "8w0xFF"},
	}
	for _, c := range cases {
		prog, err := Parse("t.p4", "const bit<64> K = "+c.src+";")
		if err != nil {
			t.Errorf("parse %q: %v", c.src, err)
			continue
		}
		cd := prog.Decls[0].(*ast.ConstDecl)
		if got := ast.Sprint(cd.Value); got != c.want {
			t.Errorf("roundtrip %q = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestOperatorPrecedence(t *testing.T) {
	prog, err := Parse("t.p4", "const bit<64> K = 1 | 2 ^ 3 & 4 == 5;")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// Expect 1 | (2 ^ (3 & (4 == 5))).
	top := prog.Decls[0].(*ast.ConstDecl).Value.(*ast.BinaryExpr)
	if top.Op != token.PIPE {
		t.Fatalf("top op = %s, want |", top.Op)
	}
	xor := top.Y.(*ast.BinaryExpr)
	if xor.Op != token.CARET {
		t.Fatalf("second op = %s, want ^", xor.Op)
	}
	and := xor.Y.(*ast.BinaryExpr)
	if and.Op != token.AMP {
		t.Fatalf("third op = %s, want &", and.Op)
	}
	if eq := and.Y.(*ast.BinaryExpr); eq.Op != token.EQ {
		t.Fatalf("innermost op = %s, want ==", eq.Op)
	}
}

func TestParseSwitch(t *testing.T) {
	prog, err := Parse("t.p4", `
control C(in bit<8> x) {
    apply {
        switch (x) {
            1: { }
            2, 3: { }
            default: { }
        }
    }
}`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ctl := prog.Control("C")
	sw := ctl.Apply.Stmts[0].(*ast.SwitchStmt)
	if len(sw.Cases) != 3 {
		t.Fatalf("cases = %d", len(sw.Cases))
	}
	if len(sw.Cases[1].Keys) != 2 {
		t.Errorf("multi-key case: keys = %d", len(sw.Cases[1].Keys))
	}
	if !sw.Cases[2].IsDefault {
		t.Error("default case not detected")
	}
}

func TestParseLocalsAndActions(t *testing.T) {
	prog, err := Parse("t.p4", `
control C(inout bit<32> x) {
    bit<32> tmp = 0;
    const bit<8> LIMIT = 10;
    action bump(bit<32> d) {
        x = x + d;
    }
    apply {
        tmp = x;
        bump(tmp);
    }
}`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ctl := prog.Control("C")
	if len(ctl.Locals) != 2 {
		t.Errorf("locals = %d, want 2", len(ctl.Locals))
	}
	if len(ctl.Actions) != 1 || ctl.Action("bump") == nil {
		t.Errorf("actions = %v", ctl.Actions)
	}
	if len(ctl.Apply.Stmts) != 2 {
		t.Errorf("apply stmts = %d", len(ctl.Apply.Stmts))
	}
}

func TestErrorRecovery(t *testing.T) {
	prog, err := Parse("t.p4", `
header broken { bit<> x; }
header good { bit<8> y; }
`)
	if err == nil {
		t.Fatal("expected parse errors")
	}
	if prog.Header("good") == nil {
		t.Error("parser did not recover to parse the second header")
	}
}

func TestMultipleErrorsReported(t *testing.T) {
	_, err := Parse("t.p4", "header a { $ } header b { $ }")
	if err == nil {
		t.Fatal("expected errors")
	}
	el, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("err is %T", err)
	}
	if len(el) < 2 {
		t.Errorf("got %d errors, want >= 2: %v", len(el), el)
	}
}

func TestWidthLiteralOverflowRejected(t *testing.T) {
	_, err := Parse("t.p4", "const bit<8> K = 4w255;")
	if err == nil || !strings.Contains(err.Error(), "does not fit") {
		t.Errorf("err = %v, want width overflow", err)
	}
}

func TestAnnotationOnControl(t *testing.T) {
	prog, err := Parse("t.p4", `
@bind("DESC_T", "my_desc_t")
@nic("e1000")
control C<DESC_T>(in DESC_T d) { apply { } }
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ctl := prog.Control("C")
	if !ctl.Annots.Has("bind") || !ctl.Annots.Has("nic") {
		t.Fatalf("annotations = %v", ctl.Annots)
	}
	if v, _ := ctl.Annots.Get("nic").StringArg(0); v != "e1000" {
		t.Errorf("nic arg = %q", v)
	}
}

func TestDontCareInSelect(t *testing.T) {
	prog, err := Parse("t.p4", `
parser P(in bit<8> x) {
    state start {
        transition select(x) {
            _: accept;
        }
    }
}`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sel := prog.Parser("P").State("start").Transition.(*ast.SelectTransition)
	if _, ok := sel.Cases[0].Keys[0].(*ast.DontCare); !ok {
		t.Errorf("key is %T, want DontCare", sel.Cases[0].Keys[0])
	}
}

func TestTupleSelectKeys(t *testing.T) {
	prog, err := Parse("t.p4", `
parser P(in bit<8> x, in bit<8> y) {
    state start {
        transition select(x, y) {
            (1, 2): accept;
            (_, 3): accept;
        }
    }
}`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sel := prog.Parser("P").State("start").Transition.(*ast.SelectTransition)
	if len(sel.Exprs) != 2 {
		t.Fatalf("select exprs = %d", len(sel.Exprs))
	}
	if len(sel.Cases[0].Keys) != 2 {
		t.Fatalf("tuple keys = %d", len(sel.Cases[0].Keys))
	}
	if _, ok := sel.Cases[1].Keys[0].(*ast.DontCare); !ok {
		t.Error("tuple _ not parsed as DontCare")
	}
}

func TestPreprocessorLinesIgnored(t *testing.T) {
	prog, err := Parse("t.p4", "#include <core.p4>\n#define FOO 1\nheader h { bit<8> a; }")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if prog.Header("h") == nil {
		t.Error("header after preprocessor lines not parsed")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("bad.p4", "header {")
}

func TestProgramPrintRoundtrip(t *testing.T) {
	prog, err := Parse("e1000.p4", e1000Deparser)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	printed := ast.SprintProgram(prog)
	prog2, err := Parse("printed.p4", printed)
	if err != nil {
		t.Fatalf("reparse printed output: %v\n%s", err, printed)
	}
	if ast.SprintProgram(prog2) != printed {
		t.Error("printing is not a fixed point")
	}
}
