package parser

import (
	"strings"
	"testing"

	"opendesc/internal/p4/ast"
)

// FuzzParse asserts the parser's robustness invariants on arbitrary input:
// it never panics, always terminates, and when it accepts a program, the
// canonical printing re-parses to the same canonical printing (print is a
// fixed point). Seeds cover every construct; `go test` runs the seeds,
// `go test -fuzz=FuzzParse` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"header h { bit<8> a; }",
		"struct s { bool b; varbit<64> v; }",
		"const bit<16> K = 0x8100;",
		"typedef bit<48> mac_t;",
		"enum bit<2> e { A = 0, B = 1 }",
		"enum colors { RED, GREEN }",
		"@semantic(\"rss\") header h { bit<32> x; }",
		"control C(in bit<8> x) { apply { if (x == 1) { } else { } } }",
		"control C<T>(in T t) { apply { switch (t) { 1: { } default: { } } } }",
		"parser P(in bit<8> x) { state start { transition select(x) { 0: accept; 1..5: a; _: reject; } } state a { transition accept; } }",
		"parser P(desc_in d, out bit<8> o) { state start { d.extract(o); transition accept; } }",
		"control C(inout bit<32> x) { bit<32> t = 0; action a(bit<8> p) { x = x + 1; } apply { a(2); } }",
		"const bit<64> K = 8w0xFF ++ 8w1;",
		"const bool B = (1 == 1) ? true : false;",
		"const bit<8> S = K[7:0];",
		"extern void log(in bit<8> x);",
		"package Pipe(P p);",
		"#include <core.p4>\nheader h { bit<8> a; }",
		"header h { bit<> broken; }",
		"control C { apply",
		"}}}{{{",
		"@a @b(1,\"s\") control C() { apply { } }",
		"header \xff\xfe { }",
		"const int K = -5;",
		"control C() { apply { return; ; } }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Bound pathological inputs so the fuzzer doesn't time out on
		// megabyte identifiers.
		if len(src) > 1<<16 {
			t.Skip()
		}
		prog, err := Parse("fuzz.p4", src)
		if err != nil {
			return // rejected input is fine; not panicking is the property
		}
		printed := ast.SprintProgram(prog)
		prog2, err := Parse("printed.p4", printed)
		if err != nil {
			t.Fatalf("canonical printing does not re-parse: %v\ninput: %q\nprinted:\n%s", err, src, printed)
		}
		printed2 := ast.SprintProgram(prog2)
		if printed != printed2 {
			t.Fatalf("printing is not a fixed point\nfirst:\n%s\nsecond:\n%s", printed, printed2)
		}
		if strings.Count(printed, "{") != strings.Count(printed, "}") {
			t.Fatalf("unbalanced canonical printing:\n%s", printed)
		}
	})
}
