package sema

import (
	"fmt"

	"opendesc/internal/p4/ast"
	"opendesc/internal/p4/token"
)

// Info is the resolved view of a program.
type Info struct {
	Prog   *ast.Program
	Types  map[string]Type  // declared name -> resolved type
	Consts map[string]Value // const name -> folded value
	Order  []string         // declaration order of named types

	errs ErrorList
}

// Check resolves a parsed program. It returns the Info together with any
// semantic diagnostics; Info is usable (best-effort) even when err != nil.
func Check(prog *ast.Program) (*Info, error) {
	in := &Info{
		Prog:   prog,
		Types:  make(map[string]Type),
		Consts: make(map[string]Value),
	}
	for _, d := range prog.Decls {
		in.declare(d)
	}
	in.checkControlsAndParsers()
	return in, in.errs.Err()
}

// MustCheck panics on semantic errors; for embedded descriptions.
func MustCheck(prog *ast.Program) *Info {
	in, err := Check(prog)
	if err != nil {
		panic(fmt.Sprintf("p4 sema %s: %v", prog.File, err))
	}
	return in
}

func (in *Info) errorf(pos token.Pos, format string, args ...any) {
	if len(in.errs) < 50 {
		in.errs = append(in.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (in *Info) defineType(pos token.Pos, name string, t Type) {
	if _, dup := in.Types[name]; dup {
		in.errorf(pos, "duplicate declaration of %q", name)
		return
	}
	in.Types[name] = t
	in.Order = append(in.Order, name)
}

func (in *Info) declare(d ast.Decl) {
	switch d := d.(type) {
	case *ast.HeaderDecl:
		in.defineType(d.Pos(), d.Name, in.composite(d.Name, true, d.Fields, d.Annots, nil))
	case *ast.StructDecl:
		in.defineType(d.Pos(), d.Name, in.composite(d.Name, false, d.Fields, d.Annots, nil))
	case *ast.TypedefDecl:
		in.defineType(d.Pos(), d.Name, in.resolveType(d.Type, nil))
	case *ast.ConstDecl:
		v, err := in.Eval(d.Value, nil)
		if err != nil {
			in.errorf(d.Pos(), "const %s: %v", d.Name, err)
			return
		}
		if t := in.resolveType(d.Type, nil); t != nil {
			if w := t.BitWidth(); w > 0 && w < 64 && !v.IsBool && v.Uint > (uint64(1)<<w)-1 {
				in.errorf(d.Pos(), "const %s: value %d overflows %s", d.Name, v.Uint, t)
			}
		}
		if _, dup := in.Consts[d.Name]; dup {
			in.errorf(d.Pos(), "duplicate const %q", d.Name)
			return
		}
		in.Consts[d.Name] = v
	case *ast.EnumDecl:
		in.declareEnum(d)
	case *ast.ExternDecl:
		in.defineType(d.Pos(), d.Name, &ExternType{Name: d.Name})
	case *ast.ParserDecl, *ast.ControlDecl:
		// Parsers and controls are not value types; checked separately.
	case *ast.VarDecl:
		// Local declarations are scoped; nothing global to record.
	}
}

func (in *Info) declareEnum(d *ast.EnumDecl) {
	et := &EnumType{Name: d.Name, ByName: make(map[string]uint64)}
	if d.Base != nil {
		et.Base = in.resolveType(d.Base, nil)
	}
	var next uint64
	for _, m := range d.Members {
		val := next
		if m.Value != nil {
			v, err := in.Eval(m.Value, nil)
			if err != nil {
				in.errorf(m.Pos(), "enum %s.%s: %v", d.Name, m.Name, err)
			} else {
				val = v.Uint
			}
		}
		if _, dup := et.ByName[m.Name]; dup {
			in.errorf(m.Pos(), "duplicate enum member %s.%s", d.Name, m.Name)
			continue
		}
		et.Members = append(et.Members, m.Name)
		et.ByName[m.Name] = val
		next = val + 1
	}
	in.defineType(d.Pos(), d.Name, et)
}

// composite resolves a header/struct declaration into a CompositeType,
// computing bit offsets in declaration order. bindings maps template type
// parameter names to concrete types (used when instantiating).
func (in *Info) composite(name string, isHeader bool, fields []*ast.Field, annots ast.Annotations, bindings map[string]Type) *CompositeType {
	ct := &CompositeType{
		Name:     name,
		IsHeader: isHeader,
		ByName:   make(map[string]*FieldInfo),
		Annots:   annots,
	}
	offset := 0
	varwidth := false
	for _, f := range fields {
		ft := in.resolveType(f.Type, bindings)
		if ft == nil {
			ft = &BitType{Width: 0}
		}
		fi := &FieldInfo{
			Name:       f.Name,
			Type:       ft,
			OffsetBits: offset,
			Annots:     f.Annots,
		}
		if sem, ok := f.Semantic(); ok {
			fi.Semantic = sem
		}
		if a := f.Annots.Get("cost"); a != nil {
			if n, ok := a.IntArg(0); ok {
				fi.Cost = float64(n)
			}
		}
		if _, dup := ct.ByName[f.Name]; dup {
			in.errorf(f.Pos(), "duplicate field %q in %s", f.Name, name)
			continue
		}
		ct.Fields = append(ct.Fields, fi)
		ct.ByName[f.Name] = fi
		switch w := ft.BitWidth(); {
		case w >= 0:
			offset += w
		default:
			varwidth = true
		}
	}
	if varwidth {
		ct.Bits = -1
	} else {
		ct.Bits = offset
	}
	return ct
}

// resolveType turns a syntactic type into a resolved type. bindings maps
// template parameters to concrete types; unresolved parameters become
// TypeVars.
func (in *Info) resolveType(t ast.Type, bindings map[string]Type) Type {
	switch t := t.(type) {
	case nil:
		return nil
	case *ast.BitType:
		return &BitType{Width: in.evalWidth(t.Width, t.Pos())}
	case *ast.IntType:
		return &IntType{Width: in.evalWidth(t.Width, t.Pos())}
	case *ast.BoolType:
		return &BoolType{}
	case *ast.VarbitType:
		return &VarbitType{MaxWidth: in.evalWidth(t.MaxWidth, t.Pos())}
	case *ast.VoidType:
		return nil
	case *ast.NamedType:
		if bindings != nil {
			if bt, ok := bindings[t.Name]; ok {
				return bt
			}
		}
		if rt, ok := in.Types[t.Name]; ok {
			return rt
		}
		// Well-known opaque interface types used by descriptor templates.
		switch t.Name {
		case "desc_in", "cmpt_out", "packet_in", "packet_out":
			return &ExternType{Name: t.Name}
		}
		return &TypeVar{Name: t.Name}
	}
	return nil
}

func (in *Info) evalWidth(e ast.Expr, pos token.Pos) int {
	v, err := in.Eval(e, nil)
	if err != nil {
		in.errorf(pos, "width: %v", err)
		return 0
	}
	if v.IsBool {
		in.errorf(pos, "width must be an integer")
		return 0
	}
	if v.Uint == 0 || v.Uint > 1<<20 {
		in.errorf(pos, "width %d out of range", v.Uint)
		return 0
	}
	return int(v.Uint)
}

// Composite returns the named header/struct, or nil.
func (in *Info) Composite(name string) *CompositeType {
	ct, _ := in.Types[name].(*CompositeType)
	return ct
}

// Enum returns the named enum, or nil.
func (in *Info) Enum(name string) *EnumType {
	et, _ := in.Types[name].(*EnumType)
	return et
}

// Headers returns all header types in declaration order.
func (in *Info) Headers() []*CompositeType {
	var out []*CompositeType
	for _, name := range in.Order {
		if ct, ok := in.Types[name].(*CompositeType); ok && ct.IsHeader {
			out = append(out, ct)
		}
	}
	return out
}

// checkControlsAndParsers validates parameter types and template usage.
func (in *Info) checkControlsAndParsers() {
	for _, d := range in.Prog.Decls {
		switch d := d.(type) {
		case *ast.ControlDecl:
			in.checkParams(d.Name, d.TypeParams, d.Params)
		case *ast.ParserDecl:
			in.checkParams(d.Name, d.TypeParams, d.Params)
		}
	}
}

func (in *Info) checkParams(owner string, tps []*ast.TypeParam, params []*ast.Param) {
	tpNames := make(map[string]bool, len(tps))
	for _, tp := range tps {
		if tpNames[tp.Name] {
			in.errorf(tp.Pos(), "%s: duplicate type parameter %q", owner, tp.Name)
		}
		tpNames[tp.Name] = true
	}
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if seen[p.Name] {
			in.errorf(p.Pos(), "%s: duplicate parameter %q", owner, p.Name)
		}
		seen[p.Name] = true
		if nt, ok := p.Type.(*ast.NamedType); ok {
			if tpNames[nt.Name] {
				continue // template parameter, bound at instantiation
			}
			if rt := in.resolveType(nt, nil); rt != nil {
				if _, unbound := rt.(*TypeVar); unbound {
					in.errorf(p.Pos(), "%s: parameter %q has unknown type %q", owner, p.Name, nt.Name)
				}
			}
		}
	}
}

// Instance is a control or parser with its template parameters bound to
// concrete types.
type Instance struct {
	Control *ast.ControlDecl // nil if parser instance
	Parser  *ast.ParserDecl  // nil if control instance
	Params  []*BoundParam
	ByName  map[string]*BoundParam
}

// BoundParam is a runtime parameter with a resolved type.
type BoundParam struct {
	Name string
	Dir  ast.ParamDir
	Type Type
}

// Param returns the named bound parameter, or nil.
func (inst *Instance) Param(name string) *BoundParam { return inst.ByName[name] }

// BindControl instantiates a control's template parameters. bindings maps
// type-parameter names (e.g. "DESC_T") to declared type names in the same
// program. Bindings may also come from @bind("PARAM","TypeName") annotations
// on the control itself; explicit arguments win.
func (in *Info) BindControl(ctl *ast.ControlDecl, bindings map[string]string) (*Instance, error) {
	bmap, err := in.bindingTypes(ctl.Annots, ctl.TypeParams, bindings)
	if err != nil {
		return nil, fmt.Errorf("control %s: %w", ctl.Name, err)
	}
	inst := &Instance{Control: ctl, ByName: make(map[string]*BoundParam)}
	for _, p := range ctl.Params {
		bp := &BoundParam{Name: p.Name, Dir: p.Dir, Type: in.resolveType(p.Type, bmap)}
		inst.Params = append(inst.Params, bp)
		inst.ByName[p.Name] = bp
	}
	return inst, nil
}

// BindParser instantiates a parser's template parameters; see BindControl.
func (in *Info) BindParser(pr *ast.ParserDecl, bindings map[string]string) (*Instance, error) {
	bmap, err := in.bindingTypes(pr.Annots, pr.TypeParams, bindings)
	if err != nil {
		return nil, fmt.Errorf("parser %s: %w", pr.Name, err)
	}
	inst := &Instance{Parser: pr, ByName: make(map[string]*BoundParam)}
	for _, p := range pr.Params {
		bp := &BoundParam{Name: p.Name, Dir: p.Dir, Type: in.resolveType(p.Type, bmap)}
		inst.Params = append(inst.Params, bp)
		inst.ByName[p.Name] = bp
	}
	return inst, nil
}

func (in *Info) bindingTypes(annots ast.Annotations, tps []*ast.TypeParam, explicit map[string]string) (map[string]Type, error) {
	names := make(map[string]string)
	for _, a := range annots {
		if a.Name != "bind" {
			continue
		}
		param, ok1 := a.StringArg(0)
		typ, ok2 := a.StringArg(1)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("@bind needs two string arguments at %s", a.Pos())
		}
		names[param] = typ
	}
	for k, v := range explicit {
		names[k] = v
	}
	bmap := make(map[string]Type)
	for _, tp := range tps {
		tn, ok := names[tp.Name]
		if !ok {
			return nil, fmt.Errorf("type parameter %s not bound", tp.Name)
		}
		rt, ok := in.Types[tn]
		if !ok {
			return nil, fmt.Errorf("type parameter %s bound to unknown type %q", tp.Name, tn)
		}
		bmap[tp.Name] = rt
	}
	return bmap, nil
}
