package sema

import (
	"errors"
	"fmt"

	"opendesc/internal/p4/ast"
	"opendesc/internal/p4/token"
)

// Env supplies values for non-constant names during evaluation (for example,
// context fields during symbolic path exploration or simulation). Lookup keys
// are dotted paths such as "ctx.use_rss" or bare identifiers.
type Env interface {
	Lookup(path string) (Value, bool)
}

// MapEnv is an Env backed by a map.
type MapEnv map[string]Value

// Lookup implements Env.
func (m MapEnv) Lookup(path string) (Value, bool) {
	v, ok := m[path]
	return v, ok
}

// ErrUnknown is returned (wrapped) when evaluation reaches a name that neither
// the constant table nor the Env can supply.
var ErrUnknown = errors.New("unknown name")

// Eval folds an expression to a constant. env may be nil; it is consulted for
// identifiers and member paths not found in the constant/enum tables.
func (in *Info) Eval(e ast.Expr, env Env) (Value, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return Value{Uint: e.Value, Width: e.Width}, nil
	case *ast.BoolLit:
		return BoolValue(e.Value), nil
	case *ast.ParenExpr:
		return in.Eval(e.X, env)
	case *ast.Ident:
		if v, ok := in.Consts[e.Name]; ok {
			return v, nil
		}
		if env != nil {
			if v, ok := env.Lookup(e.Name); ok {
				return v, nil
			}
		}
		return Value{}, fmt.Errorf("%w: %q", ErrUnknown, e.Name)
	case *ast.MemberExpr:
		// Enum member access: EnumName.member.
		if id, ok := e.X.(*ast.Ident); ok {
			if et := in.Enum(id.Name); et != nil {
				if v, ok := et.ByName[e.Member]; ok {
					return Value{Uint: v, Width: et.BitWidth()}, nil
				}
				return Value{}, fmt.Errorf("enum %s has no member %q", id.Name, e.Member)
			}
		}
		if path := e.Path(); path != "" && env != nil {
			if v, ok := env.Lookup(path); ok {
				return v, nil
			}
		}
		return Value{}, fmt.Errorf("%w: %q", ErrUnknown, ast.Sprint(e))
	case *ast.UnaryExpr:
		x, err := in.Eval(e.X, env)
		if err != nil {
			return Value{}, err
		}
		switch e.Op {
		case token.NOT:
			return BoolValue(!x.Truthy()), nil
		case token.TILDE:
			v := ^x.Uint
			if x.Width > 0 && x.Width < 64 {
				v &= (uint64(1) << x.Width) - 1
			}
			return Value{Uint: v, Width: x.Width}, nil
		case token.MINUS:
			v := -x.Uint
			if x.Width > 0 && x.Width < 64 {
				v &= (uint64(1) << x.Width) - 1
			}
			return Value{Uint: v, Width: x.Width}, nil
		}
		return Value{}, fmt.Errorf("unsupported unary operator %s", e.Op)
	case *ast.BinaryExpr:
		return in.evalBinary(e, env)
	case *ast.TernaryExpr:
		c, err := in.Eval(e.Cond, env)
		if err != nil {
			return Value{}, err
		}
		if c.Truthy() {
			return in.Eval(e.Then, env)
		}
		return in.Eval(e.Else, env)
	case *ast.CastExpr:
		x, err := in.Eval(e.X, env)
		if err != nil {
			return Value{}, err
		}
		t := in.resolveType(e.Type, nil)
		if t == nil {
			return x, nil
		}
		switch t := t.(type) {
		case *BoolType:
			return BoolValue(x.Truthy()), nil
		case *BitType:
			v := x.Uint
			if x.IsBool {
				v = 0
				if x.Bool {
					v = 1
				}
			}
			if t.Width > 0 && t.Width < 64 {
				v &= (uint64(1) << t.Width) - 1
			}
			return Value{Uint: v, Width: t.Width}, nil
		case *IntType:
			v := x.Uint
			if t.Width > 0 && t.Width < 64 {
				v &= (uint64(1) << t.Width) - 1
			}
			return Value{Uint: v, Width: t.Width}, nil
		}
		return x, nil
	case *ast.SliceExpr:
		x, err := in.Eval(e.X, env)
		if err != nil {
			return Value{}, err
		}
		hi, err := in.Eval(e.Hi, env)
		if err != nil {
			return Value{}, err
		}
		lo, err := in.Eval(e.Lo, env)
		if err != nil {
			return Value{}, err
		}
		if hi.Uint < lo.Uint || hi.Uint > 63 {
			return Value{}, fmt.Errorf("invalid bit-slice [%d:%d]", hi.Uint, lo.Uint)
		}
		width := int(hi.Uint-lo.Uint) + 1
		v := x.Uint >> lo.Uint
		if width < 64 {
			v &= (uint64(1) << width) - 1
		}
		return Value{Uint: v, Width: width}, nil
	}
	return Value{}, fmt.Errorf("cannot evaluate %T expression", e)
}

func (in *Info) evalBinary(e *ast.BinaryExpr, env Env) (Value, error) {
	x, err := in.Eval(e.X, env)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit logical operators.
	switch e.Op {
	case token.LAND:
		if !x.Truthy() {
			return BoolValue(false), nil
		}
		y, err := in.Eval(e.Y, env)
		if err != nil {
			return Value{}, err
		}
		return BoolValue(y.Truthy()), nil
	case token.LOR:
		if x.Truthy() {
			return BoolValue(true), nil
		}
		y, err := in.Eval(e.Y, env)
		if err != nil {
			return Value{}, err
		}
		return BoolValue(y.Truthy()), nil
	}
	y, err := in.Eval(e.Y, env)
	if err != nil {
		return Value{}, err
	}
	width := x.Width
	if y.Width > width {
		width = y.Width
	}
	trunc := func(v uint64) Value {
		if width > 0 && width < 64 {
			v &= (uint64(1) << width) - 1
		}
		return Value{Uint: v, Width: width}
	}
	switch e.Op {
	case token.PLUS:
		return trunc(x.Uint + y.Uint), nil
	case token.MINUS:
		return trunc(x.Uint - y.Uint), nil
	case token.STAR:
		return trunc(x.Uint * y.Uint), nil
	case token.SLASH:
		if y.Uint == 0 {
			return Value{}, errors.New("division by zero")
		}
		return trunc(x.Uint / y.Uint), nil
	case token.PERCENT:
		if y.Uint == 0 {
			return Value{}, errors.New("modulo by zero")
		}
		return trunc(x.Uint % y.Uint), nil
	case token.SHL:
		if y.Uint > 63 {
			return trunc(0), nil
		}
		return trunc(x.Uint << y.Uint), nil
	case token.SHR:
		if y.Uint > 63 {
			return trunc(0), nil
		}
		return trunc(x.Uint >> y.Uint), nil
	case token.AMP:
		return trunc(x.Uint & y.Uint), nil
	case token.PIPE:
		return trunc(x.Uint | y.Uint), nil
	case token.CARET:
		return trunc(x.Uint ^ y.Uint), nil
	case token.PLUSPLUS:
		// P4 concatenation: x ++ y has width wx+wy.
		if x.Width <= 0 || y.Width <= 0 {
			return Value{}, errors.New("concatenation requires sized operands")
		}
		w := x.Width + y.Width
		if w > 64 {
			return Value{}, fmt.Errorf("concatenation width %d exceeds 64", w)
		}
		return Value{Uint: x.Uint<<y.Width | y.Uint, Width: w}, nil
	case token.EQ:
		return BoolValue(x.Equal(y)), nil
	case token.NEQ:
		return BoolValue(!x.Equal(y)), nil
	case token.LANGLE:
		return BoolValue(x.Uint < y.Uint), nil
	case token.RANGLE:
		return BoolValue(x.Uint > y.Uint), nil
	case token.LE:
		return BoolValue(x.Uint <= y.Uint), nil
	case token.GE:
		return BoolValue(x.Uint >= y.Uint), nil
	}
	return Value{}, fmt.Errorf("unsupported binary operator %s", e.Op)
}

// FreeVars collects the dotted paths of identifiers and member chains that
// are not resolvable as constants or enum members — i.e. the runtime inputs
// an expression depends on (context fields, descriptor fields).
func (in *Info) FreeVars(e ast.Expr) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if p != "" && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Ident:
			if _, ok := in.Consts[e.Name]; !ok {
				add(e.Name)
			}
		case *ast.MemberExpr:
			if id, ok := e.X.(*ast.Ident); ok {
				if et := in.Enum(id.Name); et != nil {
					return // enum member, constant
				}
			}
			if p := e.Path(); p != "" {
				add(p)
				return
			}
			walk(e.X)
		case *ast.ParenExpr:
			walk(e.X)
		case *ast.UnaryExpr:
			walk(e.X)
		case *ast.BinaryExpr:
			walk(e.X)
			walk(e.Y)
		case *ast.TernaryExpr:
			walk(e.Cond)
			walk(e.Then)
			walk(e.Else)
		case *ast.CastExpr:
			walk(e.X)
		case *ast.SliceExpr:
			walk(e.X)
			walk(e.Hi)
			walk(e.Lo)
		case *ast.IndexExpr:
			walk(e.X)
			walk(e.Index)
		case *ast.CallExpr:
			for _, a := range e.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}
