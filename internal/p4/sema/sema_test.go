package sema

import (
	"errors"
	"strings"
	"testing"

	"opendesc/internal/p4/ast"
	"opendesc/internal/p4/parser"
)

func check(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := parser.Parse("t.p4", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	in, err := Check(prog)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return in
}

func TestHeaderLayout(t *testing.T) {
	in := check(t, `
header cmpt_t {
    @semantic("rss")
    bit<32> rss_val;
    @semantic("vlan")
    bit<16> vlan_tag;
    bit<8> flags;
    bool valid;
}`)
	ct := in.Composite("cmpt_t")
	if ct == nil {
		t.Fatal("cmpt_t missing")
	}
	if !ct.IsHeader {
		t.Error("should be a header")
	}
	wantOffsets := []int{0, 32, 48, 56}
	wantWidths := []int{32, 16, 8, 1}
	for i, f := range ct.Fields {
		if f.OffsetBits != wantOffsets[i] {
			t.Errorf("field %s offset = %d, want %d", f.Name, f.OffsetBits, wantOffsets[i])
		}
		if f.Type.BitWidth() != wantWidths[i] {
			t.Errorf("field %s width = %d, want %d", f.Name, f.Type.BitWidth(), wantWidths[i])
		}
	}
	if ct.Bits != 57 {
		t.Errorf("total bits = %d, want 57", ct.Bits)
	}
	if got := ct.Semantics(); len(got) != 2 || got[0] != "rss" || got[1] != "vlan" {
		t.Errorf("semantics = %v", got)
	}
}

func TestConstFolding(t *testing.T) {
	in := check(t, `
const bit<16> BASE = 0x100;
const bit<16> NEXT = BASE + 8;
const bit<16> SHIFTED = BASE << 2;
const bool FLAG = NEXT == 0x108;
`)
	if v := in.Consts["NEXT"]; v.Uint != 0x108 {
		t.Errorf("NEXT = %v", v)
	}
	if v := in.Consts["SHIFTED"]; v.Uint != 0x400 {
		t.Errorf("SHIFTED = %v", v)
	}
	if v := in.Consts["FLAG"]; !v.IsBool || !v.Bool {
		t.Errorf("FLAG = %v", v)
	}
}

func TestWidthFromConst(t *testing.T) {
	in := check(t, `
const bit<8> W = 16;
header h { bit<W> a; bit<W*2> b; }
`)
	ct := in.Composite("h")
	if ct.Fields[0].Type.BitWidth() != 16 {
		t.Errorf("a width = %d", ct.Fields[0].Type.BitWidth())
	}
	if ct.Fields[1].Type.BitWidth() != 32 {
		t.Errorf("b width = %d", ct.Fields[1].Type.BitWidth())
	}
	if ct.Bits != 48 {
		t.Errorf("total = %d", ct.Bits)
	}
}

func TestTypedefResolution(t *testing.T) {
	in := check(t, `
typedef bit<48> mac_t;
header eth { mac_t dst; mac_t src; bit<16> et; }
`)
	ct := in.Composite("eth")
	if ct.Bits != 112 {
		t.Errorf("eth bits = %d, want 112", ct.Bits)
	}
}

func TestEnumValues(t *testing.T) {
	in := check(t, `
enum bit<2> fmt_t { FULL = 0, COMPRESSED = 1, MINI = 2 }
enum color_t { RED, GREEN, BLUE }
enum bit<4> gap_t { A = 1, B, C = 10, D }
`)
	et := in.Enum("fmt_t")
	if et.ByName["COMPRESSED"] != 1 || et.BitWidth() != 2 {
		t.Errorf("fmt_t = %+v", et)
	}
	if in.Enum("color_t").ByName["BLUE"] != 2 {
		t.Error("implicit enum numbering wrong")
	}
	g := in.Enum("gap_t")
	if g.ByName["B"] != 2 || g.ByName["D"] != 11 {
		t.Errorf("gap numbering: %v", g.ByName)
	}
}

func TestEnumMemberEval(t *testing.T) {
	in := check(t, `
enum bit<2> fmt_t { FULL = 0, COMPRESSED = 1 }
const bit<2> F = fmt_t.COMPRESSED;
`)
	if v := in.Consts["F"]; v.Uint != 1 {
		t.Errorf("F = %v", v)
	}
}

func TestDuplicateDetection(t *testing.T) {
	for _, src := range []string{
		"header a { bit<8> x; } header a { bit<8> y; }",
		"header a { bit<8> x; bit<8> x; }",
		"const bit<8> K = 1; const bit<8> K = 2;",
		"enum e { A, A }",
		"control C(in bit<8> x, in bit<8> x) { apply {} }",
	} {
		prog, err := parser.Parse("t.p4", src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Check(prog); err == nil {
			t.Errorf("Check(%q) should report duplicates", src)
		}
	}
}

func TestConstOverflowDetected(t *testing.T) {
	prog, _ := parser.Parse("t.p4", "const bit<4> K = 300;")
	if _, err := Check(prog); err == nil || !strings.Contains(err.Error(), "overflows") {
		t.Errorf("err = %v, want overflow", err)
	}
}

func TestVarbitMakesWidthUnfixed(t *testing.T) {
	in := check(t, "header h { bit<8> a; varbit<64> v; }")
	if in.Composite("h").Bits != -1 {
		t.Error("varbit header should have no fixed width")
	}
}

func TestBindControl(t *testing.T) {
	in := check(t, `
struct ctx_t { bit<1> use_rss; }
header desc_t { bit<64> addr; bit<16> len; }
struct meta_t { bit<32> rss; }
control CmptDeparser<CTX, DESC, META>(
    cmpt_out co, in CTX ctx, in DESC d, in META m) { apply { } }
`)
	ctl := in.Prog.Control("CmptDeparser")
	inst, err := in.BindControl(ctl, map[string]string{
		"CTX": "ctx_t", "DESC": "desc_t", "META": "meta_t",
	})
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	if ct, ok := inst.Param("ctx").Type.(*CompositeType); !ok || ct.Name != "ctx_t" {
		t.Errorf("ctx type = %v", inst.Param("ctx").Type)
	}
	if ct, ok := inst.Param("d").Type.(*CompositeType); !ok || !ct.IsHeader {
		t.Errorf("desc type = %v", inst.Param("d").Type)
	}
}

func TestBindViaAnnotations(t *testing.T) {
	in := check(t, `
struct ctx_t { bit<1> f; }
@bind("CTX", "ctx_t")
control C<CTX>(in CTX ctx) { apply { } }
`)
	inst, err := in.BindControl(in.Prog.Control("C"), nil)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	if inst.Param("ctx").Type.(*CompositeType).Name != "ctx_t" {
		t.Error("annotation binding failed")
	}
}

func TestBindMissingParam(t *testing.T) {
	in := check(t, `control C<CTX>(in CTX ctx) { apply { } }`)
	if _, err := in.BindControl(in.Prog.Control("C"), nil); err == nil {
		t.Error("unbound type param should error")
	}
	if _, err := in.BindControl(in.Prog.Control("C"), map[string]string{"CTX": "nope"}); err == nil {
		t.Error("binding to unknown type should error")
	}
}

// parseExpr extracts the value expression of a scratch const declaration so
// tests can evaluate arbitrary expressions against a given Info.
func parseExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	prog, err := parser.Parse("expr.p4", "const bool X = "+src+";")
	if err != nil {
		t.Fatalf("parse expr %q: %v", src, err)
	}
	return prog.Decls[0].(*ast.ConstDecl).Value
}

func TestEvalWithEnv(t *testing.T) {
	in := check(t, "const bit<8> K = 3;")
	e := parseExpr(t, "ctx.use_rss == 1 && K == 3")
	env := MapEnv{"ctx.use_rss": UintValue(1, 1)}
	v, err := in.Eval(e, env)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if !v.Truthy() {
		t.Errorf("got %v, want true", v)
	}
	env["ctx.use_rss"] = UintValue(0, 1)
	v, _ = in.Eval(e, env)
	if v.Truthy() {
		t.Error("short-circuit AND with false lhs must be false")
	}
}

func TestEvalUnknownName(t *testing.T) {
	in := check(t, "")
	_, err := in.Eval(parseExpr(t, "mystery == 1"), nil)
	if !errors.Is(err, ErrUnknown) {
		t.Errorf("err = %v, want ErrUnknown", err)
	}
}

func TestEvalBitSlice(t *testing.T) {
	in := check(t, "const bit<16> K = 0xABCD;")
	v, err := in.Eval(parseExpr(t, "K[15:8] == 0xAB"), nil)
	if err != nil || !v.Truthy() {
		t.Errorf("slice eval: %v %v", v, err)
	}
}

func TestEvalConcat(t *testing.T) {
	in := check(t, "")
	v, err := in.Eval(parseExpr(t, "8w0xAB ++ 8w0xCD == 16w0xABCD"), nil)
	if err != nil || !v.Truthy() {
		t.Errorf("concat eval: %v %v", v, err)
	}
}

func TestEvalDivByZero(t *testing.T) {
	in := check(t, "")
	if _, err := in.Eval(parseExpr(t, "1 / 0"), nil); err == nil {
		t.Error("division by zero should error")
	}
}

func TestEvalCast(t *testing.T) {
	in := check(t, "")
	v, err := in.Eval(parseExpr(t, "(bit<4>) 0xFF == 0xF"), nil)
	if err != nil || !v.Truthy() {
		t.Errorf("cast eval: %v %v", v, err)
	}
}

func TestFreeVars(t *testing.T) {
	in := check(t, `
const bit<8> K = 1;
enum bit<2> fmt_t { FULL = 0 }
`)
	e := parseExpr(t, "ctx.use_rss == K && q.size > 8 || fmt_t.FULL == x")
	got := in.FreeVars(e)
	want := map[string]bool{"ctx.use_rss": true, "q.size": true, "x": true}
	if len(got) != len(want) {
		t.Fatalf("free vars = %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Errorf("unexpected free var %q", v)
		}
	}
}

func TestTernaryEval(t *testing.T) {
	in := check(t, "")
	v, err := in.Eval(parseExpr(t, "1 == 1 ? 7 : 9"), nil)
	if err != nil || v.Uint != 7 {
		t.Errorf("ternary = %v %v", v, err)
	}
}
