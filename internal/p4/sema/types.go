// Package sema resolves symbols, computes bit widths and field offsets, and
// extracts OpenDesc annotations (@semantic, @cost, @context, @bind) from a
// parsed P4 program.
//
// The output Info is the compiler's typed view of a NIC interface description
// or an application intent header: every header/struct is flattened into a
// list of fields with bit offsets, widths and semantic tags, and every
// constant and enum member is folded to a value.
package sema

import (
	"fmt"
	"strings"

	"opendesc/internal/p4/ast"
)

// Type is a resolved P4 type.
type Type interface {
	// BitWidth returns the serialized width in bits, or -1 if the type has no
	// fixed width (varbit) or is not serializable.
	BitWidth() int
	String() string
}

// BitType is bit<W>.
type BitType struct{ Width int }

// BitWidth implements Type.
func (t *BitType) BitWidth() int  { return t.Width }
func (t *BitType) String() string { return fmt.Sprintf("bit<%d>", t.Width) }

// IntType is int<W>.
type IntType struct{ Width int }

// BitWidth implements Type.
func (t *IntType) BitWidth() int  { return t.Width }
func (t *IntType) String() string { return fmt.Sprintf("int<%d>", t.Width) }

// BoolType is bool; it serializes as a single bit.
type BoolType struct{}

// BitWidth implements Type.
func (t *BoolType) BitWidth() int  { return 1 }
func (t *BoolType) String() string { return "bool" }

// VarbitType is varbit<Max>; it has no fixed width.
type VarbitType struct{ MaxWidth int }

// BitWidth implements Type.
func (t *VarbitType) BitWidth() int  { return -1 }
func (t *VarbitType) String() string { return fmt.Sprintf("varbit<%d>", t.MaxWidth) }

// FieldInfo is a resolved header or struct field.
type FieldInfo struct {
	Name       string
	Type       Type
	OffsetBits int // bit offset from the start of the enclosing header
	Annots     ast.Annotations
	Semantic   string  // @semantic tag, "" if untagged
	Cost       float64 // @cost(n) software-emulation cost hint, 0 if absent
}

// WidthBits returns the field's width in bits (0 for varbit fields).
func (f *FieldInfo) WidthBits() int {
	if w := f.Type.BitWidth(); w > 0 {
		return w
	}
	return 0
}

// CompositeType is a resolved header or struct.
type CompositeType struct {
	Name     string
	IsHeader bool // header vs struct
	Fields   []*FieldInfo
	ByName   map[string]*FieldInfo
	Bits     int // total serialized width; -1 if any field is varbit
	Annots   ast.Annotations
}

// BitWidth implements Type.
func (t *CompositeType) BitWidth() int { return t.Bits }

func (t *CompositeType) String() string {
	kind := "struct"
	if t.IsHeader {
		kind = "header"
	}
	return kind + " " + t.Name
}

// Field returns the named field, or nil.
func (t *CompositeType) Field(name string) *FieldInfo { return t.ByName[name] }

// Semantics returns the set of @semantic tags carried by the composite's
// fields, in declaration order.
func (t *CompositeType) Semantics() []string {
	var out []string
	for _, f := range t.Fields {
		if f.Semantic != "" {
			out = append(out, f.Semantic)
		}
	}
	return out
}

// EnumType is a resolved enum.
type EnumType struct {
	Name    string
	Base    Type // nil for plain enums (treated as bit<32>)
	Members []string
	ByName  map[string]uint64
}

// BitWidth implements Type.
func (t *EnumType) BitWidth() int {
	if t.Base != nil {
		return t.Base.BitWidth()
	}
	return 32
}

func (t *EnumType) String() string { return "enum " + t.Name }

// ExternType marks an extern declaration; opaque.
type ExternType struct{ Name string }

// BitWidth implements Type.
func (t *ExternType) BitWidth() int  { return -1 }
func (t *ExternType) String() string { return "extern " + t.Name }

// TypeVar is an unbound template type parameter.
type TypeVar struct{ Name string }

// BitWidth implements Type.
func (t *TypeVar) BitWidth() int  { return -1 }
func (t *TypeVar) String() string { return t.Name }

// Value is a folded constant.
type Value struct {
	IsBool bool
	Bool   bool
	Uint   uint64
	Width  int // 0 if unsized
}

// String renders the value for diagnostics.
func (v Value) String() string {
	if v.IsBool {
		return fmt.Sprintf("%t", v.Bool)
	}
	if v.Width > 0 {
		return fmt.Sprintf("%dw%d", v.Width, v.Uint)
	}
	return fmt.Sprintf("%d", v.Uint)
}

// BoolValue builds a boolean constant.
func BoolValue(b bool) Value { return Value{IsBool: true, Bool: b} }

// UintValue builds an unsigned integer constant.
func UintValue(u uint64, width int) Value { return Value{Uint: u, Width: width} }

// Truthy reports the value interpreted as a condition.
func (v Value) Truthy() bool {
	if v.IsBool {
		return v.Bool
	}
	return v.Uint != 0
}

// Equal compares two constants by value (ignoring width).
func (v Value) Equal(o Value) bool {
	if v.IsBool != o.IsBool {
		// bool vs numeric: compare truthiness against 0/1 encoding.
		return v.Truthy() == o.Truthy()
	}
	if v.IsBool {
		return v.Bool == o.Bool
	}
	return v.Uint == o.Uint
}

// Error is a semantic-analysis diagnostic.
type Error struct {
	Pos fmt.Stringer
	Msg string
}

func (e *Error) Error() string {
	if e.Pos != nil {
		return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
	}
	return e.Msg
}

// ErrorList aggregates diagnostics.
type ErrorList []*Error

func (el ErrorList) Error() string {
	switch len(el) {
	case 0:
		return "no errors"
	case 1:
		return el[0].Error()
	}
	var sb strings.Builder
	sb.WriteString(el[0].Error())
	fmt.Fprintf(&sb, " (and %d more errors)", len(el)-1)
	return sb.String()
}

// Err returns the list as an error, or nil if empty.
func (el ErrorList) Err() error {
	if len(el) == 0 {
		return nil
	}
	return el
}
