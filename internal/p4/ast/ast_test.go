package ast

import (
	"strings"
	"testing"

	"opendesc/internal/p4/token"
)

func ident(n string) *Ident { return &Ident{Name: n} }

func TestMemberExprPath(t *testing.T) {
	e := &MemberExpr{X: ident("ctx"), Member: "use_rss"}
	if e.Path() != "ctx.use_rss" {
		t.Errorf("path = %q", e.Path())
	}
	nested := &MemberExpr{X: e, Member: "bit0"}
	if nested.Path() != "ctx.use_rss.bit0" {
		t.Errorf("nested path = %q", nested.Path())
	}
	call := &MemberExpr{X: &CallExpr{Fun: ident("f")}, Member: "x"}
	if call.Path() != "" {
		t.Errorf("non-ident-rooted path = %q", call.Path())
	}
}

func TestCallExprCallee(t *testing.T) {
	bare := &CallExpr{Fun: ident("verify")}
	if recv, name := bare.Callee(); recv != nil || name != "verify" {
		t.Errorf("bare callee = %v %q", recv, name)
	}
	method := &CallExpr{Fun: &MemberExpr{X: ident("cmpt_out"), Member: "emit"}}
	recv, name := method.Callee()
	if name != "emit" {
		t.Errorf("method callee = %q", name)
	}
	if id, ok := recv.(*Ident); !ok || id.Name != "cmpt_out" {
		t.Errorf("receiver = %v", recv)
	}
	weird := &CallExpr{Fun: &ParenExpr{X: ident("f")}}
	if _, name := weird.Callee(); name != "" {
		t.Errorf("paren callee = %q", name)
	}
}

func TestUnparen(t *testing.T) {
	inner := ident("x")
	wrapped := &ParenExpr{X: &ParenExpr{X: inner}}
	if Unparen(wrapped) != Expr(inner) {
		t.Error("Unparen should strip nested parens")
	}
	if Unparen(inner) != Expr(inner) {
		t.Error("Unparen on bare expr should be identity")
	}
}

func TestAnnotationHelpers(t *testing.T) {
	as := Annotations{
		{Name: "semantic", Args: []Expr{&StringLit{Value: "rss"}}},
		{Name: "cost", Args: []Expr{&IntLit{Value: 12}}},
		{Name: "neg", Args: []Expr{&UnaryExpr{Op: token.MINUS, X: &IntLit{Value: 5}}}},
	}
	if !as.Has("semantic") || as.Has("missing") {
		t.Error("Has broken")
	}
	if v, ok := as.Get("semantic").StringArg(0); !ok || v != "rss" {
		t.Errorf("string arg = %q %v", v, ok)
	}
	if _, ok := as.Get("semantic").StringArg(1); ok {
		t.Error("out-of-range arg should fail")
	}
	if _, ok := as.Get("cost").StringArg(0); ok {
		t.Error("int arg read as string should fail")
	}
	if v, ok := as.Get("cost").IntArg(0); !ok || v != 12 {
		t.Errorf("int arg = %d %v", v, ok)
	}
	if v, ok := as.Get("neg").IntArg(0); !ok || v != -5 {
		t.Errorf("negative int arg = %d %v", v, ok)
	}
}

func TestFieldSemantic(t *testing.T) {
	f := &Field{
		Name:   "rss_val",
		Type:   &BitType{Width: &IntLit{Value: 32}},
		Annots: Annotations{{Name: "semantic", Args: []Expr{&StringLit{Value: "rss"}}}},
	}
	if s, ok := f.Semantic(); !ok || s != "rss" {
		t.Errorf("semantic = %q %v", s, ok)
	}
	plain := &Field{Name: "pad"}
	if _, ok := plain.Semantic(); ok {
		t.Error("untagged field should have no semantic")
	}
}

func TestProgramLookups(t *testing.T) {
	prog := &Program{Decls: []Decl{
		&HeaderDecl{Name: "h1"},
		&StructDecl{Name: "s1"},
		&ControlDecl{Name: "c1"},
		&ControlDecl{Name: "c2"},
		&ParserDecl{Name: "p1"},
	}}
	if prog.Header("h1") == nil || prog.Header("nope") != nil {
		t.Error("Header lookup")
	}
	if prog.Struct("s1") == nil || prog.Struct("h1") != nil {
		t.Error("Struct lookup")
	}
	if prog.Control("c2") == nil || prog.Parser("p1") == nil {
		t.Error("Control/Parser lookup")
	}
	if len(prog.Controls()) != 2 || len(prog.Parsers()) != 1 || len(prog.Headers()) != 1 {
		t.Error("collection accessors")
	}
}

func TestDeclNames(t *testing.T) {
	decls := []Decl{
		&HeaderDecl{Name: "h"},
		&StructDecl{Name: "s"},
		&TypedefDecl{Name: "t"},
		&ConstDecl{Name: "k"},
		&EnumDecl{Name: "e"},
		&ParserDecl{Name: "p"},
		&ControlDecl{Name: "c"},
		&ActionDecl{Name: "a"},
		&VarDecl{Name: "v"},
		&ExternDecl{Name: "x"},
	}
	want := []string{"h", "s", "t", "k", "e", "p", "c", "a", "v", "x"}
	for i, d := range decls {
		if d.DeclName() != want[i] {
			t.Errorf("decl %d name = %q, want %q", i, d.DeclName(), want[i])
		}
	}
}

func TestSprintExpressions(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&BinaryExpr{Op: token.PLUS, X: ident("a"), Y: ident("b")}, "a + b"},
		{&UnaryExpr{Op: token.NOT, X: ident("f")}, "!f"},
		{&TernaryExpr{Cond: ident("c"), Then: ident("x"), Else: ident("y")}, "c ? x : y"},
		{&SliceExpr{X: ident("v"), Hi: &IntLit{Value: 15, Text: "15"}, Lo: &IntLit{Value: 8, Text: "8"}}, "v[15:8]"},
		{&RangeExpr{Lo: &IntLit{Value: 1, Text: "1"}, Hi: &IntLit{Value: 9, Text: "9"}}, "1 .. 9"},
		{&DontCare{}, "_"},
		{&MaskExpr{Value: ident("v"), Mask: ident("m")}, "v &&& m"},
		{&CastExpr{Type: &BitType{Width: &IntLit{Value: 8, Text: "8"}}, X: ident("x")}, "(bit<8>) x"},
		{&IndexExpr{X: ident("hs"), Index: &IntLit{Value: 2, Text: "2"}}, "hs[2]"},
		{&BoolLit{Value: true}, "true"},
		{&StringLit{Value: "rss"}, `"rss"`},
	}
	for _, c := range cases {
		if got := Sprint(c.e); got != c.want {
			t.Errorf("Sprint = %q, want %q", got, c.want)
		}
	}
}

func TestSprintIfElseChain(t *testing.T) {
	s := &IfStmt{
		Cond: ident("a"),
		Then: &BlockStmt{},
		Else: &IfStmt{Cond: ident("b"), Then: &BlockStmt{}, Else: &BlockStmt{}},
	}
	out := Sprint(s)
	if !strings.Contains(out, "else if (b)") {
		t.Errorf("chain rendering:\n%s", out)
	}
}

func TestHeaderFieldLookup(t *testing.T) {
	h := &HeaderDecl{Name: "h", Fields: []*Field{{Name: "a"}, {Name: "b"}}}
	if h.Field("b") == nil || h.Field("z") != nil {
		t.Error("field lookup")
	}
	s := &StructDecl{Name: "s", Fields: []*Field{{Name: "x"}}}
	if s.Field("x") == nil || s.Field("a") != nil {
		t.Error("struct field lookup")
	}
}

func TestParamDirString(t *testing.T) {
	if DirIn.String() != "in" || DirOut.String() != "out" || DirInOut.String() != "inout" || DirNone.String() != "" {
		t.Error("direction strings")
	}
}

func TestParserStateLookup(t *testing.T) {
	p := &ParserDecl{States: []*ParserState{{Name: "start"}, {Name: "parse_x"}}}
	if p.State("parse_x") == nil || p.State("nope") != nil {
		t.Error("state lookup")
	}
	c := &ControlDecl{Actions: []*ActionDecl{{Name: "drop"}}}
	if c.Action("drop") == nil || c.Action("fwd") != nil {
		t.Error("action lookup")
	}
}
