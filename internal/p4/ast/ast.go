// Package ast defines the abstract syntax tree for the P4-16 subset used by
// OpenDesc interface descriptions: headers, structs, typedefs, enums, consts,
// parsers with select-based state machines, and controls with apply blocks.
//
// Every node carries a source position for diagnostics. The tree is purely
// syntactic; widths, symbol bindings and semantic annotations are resolved by
// package sema.
package ast

import (
	"opendesc/internal/p4/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// Decl is a top-level or local declaration.
type Decl interface {
	Node
	declNode()
	// DeclName returns the declared name ("" for anonymous declarations).
	DeclName() string
}

// Stmt is a statement inside an apply block, action, or parser state.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is an expression.
type Expr interface {
	Node
	exprNode()
}

// Type is a syntactic type reference.
type Type interface {
	Node
	typeNode()
}

// Program is a parsed compilation unit.
type Program struct {
	File  string
	Decls []Decl
}

// Decl lookup helpers. They scan linearly; programs are small.

// Header returns the header declaration with the given name, or nil.
func (p *Program) Header(name string) *HeaderDecl {
	for _, d := range p.Decls {
		if h, ok := d.(*HeaderDecl); ok && h.Name == name {
			return h
		}
	}
	return nil
}

// Struct returns the struct declaration with the given name, or nil.
func (p *Program) Struct(name string) *StructDecl {
	for _, d := range p.Decls {
		if s, ok := d.(*StructDecl); ok && s.Name == name {
			return s
		}
	}
	return nil
}

// Control returns the control declaration with the given name, or nil.
func (p *Program) Control(name string) *ControlDecl {
	for _, d := range p.Decls {
		if c, ok := d.(*ControlDecl); ok && c.Name == name {
			return c
		}
	}
	return nil
}

// Parser returns the parser declaration with the given name, or nil.
func (p *Program) Parser(name string) *ParserDecl {
	for _, d := range p.Decls {
		if pr, ok := d.(*ParserDecl); ok && pr.Name == name {
			return pr
		}
	}
	return nil
}

// Controls returns all control declarations in order.
func (p *Program) Controls() []*ControlDecl {
	var out []*ControlDecl
	for _, d := range p.Decls {
		if c, ok := d.(*ControlDecl); ok {
			out = append(out, c)
		}
	}
	return out
}

// Parsers returns all parser declarations in order.
func (p *Program) Parsers() []*ParserDecl {
	var out []*ParserDecl
	for _, d := range p.Decls {
		if pr, ok := d.(*ParserDecl); ok {
			out = append(out, pr)
		}
	}
	return out
}

// Headers returns all header declarations in order.
func (p *Program) Headers() []*HeaderDecl {
	var out []*HeaderDecl
	for _, d := range p.Decls {
		if h, ok := d.(*HeaderDecl); ok {
			out = append(out, h)
		}
	}
	return out
}

// Annotation is an @name(args...) marker attached to a declaration or field.
type Annotation struct {
	AtPos token.Pos
	Name  string
	Args  []Expr
}

func (a *Annotation) Pos() token.Pos { return a.AtPos }

// StringArg returns the i-th argument if it is a string literal.
func (a *Annotation) StringArg(i int) (string, bool) {
	if i >= len(a.Args) {
		return "", false
	}
	s, ok := a.Args[i].(*StringLit)
	if !ok {
		return "", false
	}
	return s.Value, true
}

// IntArg returns the i-th argument if it is an integer literal.
func (a *Annotation) IntArg(i int) (int64, bool) {
	if i >= len(a.Args) {
		return 0, false
	}
	switch v := a.Args[i].(type) {
	case *IntLit:
		return int64(v.Value), true
	case *UnaryExpr:
		if v.Op == token.MINUS {
			if n, ok := v.X.(*IntLit); ok {
				return -int64(n.Value), true
			}
		}
	}
	return 0, false
}

// Annotations is an annotation list with lookup helpers.
type Annotations []*Annotation

// Get returns the first annotation with the given name.
func (as Annotations) Get(name string) *Annotation {
	for _, a := range as {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Has reports whether an annotation with the given name exists.
func (as Annotations) Has(name string) bool { return as.Get(name) != nil }

// ---- Declarations ----

// HeaderDecl is `header Name { fields }`.
type HeaderDecl struct {
	HeaderPos token.Pos
	Name      string
	Annots    Annotations
	Fields    []*Field
}

func (d *HeaderDecl) Pos() token.Pos   { return d.HeaderPos }
func (d *HeaderDecl) declNode()        {}
func (d *HeaderDecl) DeclName() string { return d.Name }

// Field returns the named field, or nil.
func (d *HeaderDecl) Field(name string) *Field {
	for _, f := range d.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// StructDecl is `struct Name { fields }`.
type StructDecl struct {
	StructPos token.Pos
	Name      string
	Annots    Annotations
	Fields    []*Field
}

func (d *StructDecl) Pos() token.Pos   { return d.StructPos }
func (d *StructDecl) declNode()        {}
func (d *StructDecl) DeclName() string { return d.Name }

// Field returns the named field, or nil.
func (d *StructDecl) Field(name string) *Field {
	for _, f := range d.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Field is a header or struct member.
type Field struct {
	NamePos token.Pos
	Name    string
	Type    Type
	Annots  Annotations
}

func (f *Field) Pos() token.Pos { return f.NamePos }

// Semantic returns the @semantic("name") tag value, if present.
func (f *Field) Semantic() (string, bool) {
	if a := f.Annots.Get("semantic"); a != nil {
		return a.StringArg(0)
	}
	return "", false
}

// TypedefDecl is `typedef Type Name;`.
type TypedefDecl struct {
	TypedefPos token.Pos
	Name       string
	Type       Type
}

func (d *TypedefDecl) Pos() token.Pos   { return d.TypedefPos }
func (d *TypedefDecl) declNode()        {}
func (d *TypedefDecl) DeclName() string { return d.Name }

// ConstDecl is `const Type Name = Expr;`.
type ConstDecl struct {
	ConstPos token.Pos
	Name     string
	Type     Type
	Value    Expr
}

func (d *ConstDecl) Pos() token.Pos   { return d.ConstPos }
func (d *ConstDecl) declNode()        {}
func (d *ConstDecl) DeclName() string { return d.Name }

// EnumMember is a single enum entry with an optional explicit value.
type EnumMember struct {
	NamePos token.Pos
	Name    string
	Value   Expr // nil unless serializable enum with explicit values
}

func (m *EnumMember) Pos() token.Pos { return m.NamePos }

// EnumDecl is `enum [bit<N>] Name { members }`.
type EnumDecl struct {
	EnumPos token.Pos
	Name    string
	Base    Type // nil for plain enums
	Members []*EnumMember
}

func (d *EnumDecl) Pos() token.Pos   { return d.EnumPos }
func (d *EnumDecl) declNode()        {}
func (d *EnumDecl) DeclName() string { return d.Name }

// ParamDir is the direction of a parser/control parameter.
type ParamDir int

// Parameter directions.
const (
	DirNone ParamDir = iota
	DirIn
	DirOut
	DirInOut
)

func (d ParamDir) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	case DirInOut:
		return "inout"
	}
	return ""
}

// Param is a runtime parameter of a parser or control.
type Param struct {
	NamePos token.Pos
	Dir     ParamDir
	Type    Type
	Name    string
	Annots  Annotations
}

func (p *Param) Pos() token.Pos { return p.NamePos }

// TypeParam is a template type parameter, e.g. DESC_T.
type TypeParam struct {
	NamePos token.Pos
	Name    string
}

func (p *TypeParam) Pos() token.Pos { return p.NamePos }

// ParserDecl is a P4 parser with states.
type ParserDecl struct {
	ParserPos  token.Pos
	Name       string
	Annots     Annotations
	TypeParams []*TypeParam
	Params     []*Param
	Locals     []Decl
	States     []*ParserState
}

func (d *ParserDecl) Pos() token.Pos   { return d.ParserPos }
func (d *ParserDecl) declNode()        {}
func (d *ParserDecl) DeclName() string { return d.Name }

// State returns the named state, or nil.
func (d *ParserDecl) State(name string) *ParserState {
	for _, s := range d.States {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// ParserState is `state name { stmts transition ... }`.
type ParserState struct {
	StatePos   token.Pos
	Name       string
	Annots     Annotations
	Stmts      []Stmt
	Transition Transition // nil means implicit reject
}

func (s *ParserState) Pos() token.Pos { return s.StatePos }

// Transition is a parser state transition.
type Transition interface {
	Node
	transitionNode()
}

// DirectTransition is `transition name;`.
type DirectTransition struct {
	TransPos token.Pos
	Target   string
}

func (t *DirectTransition) Pos() token.Pos  { return t.TransPos }
func (t *DirectTransition) transitionNode() {}

// SelectTransition is `transition select(exprs) { cases }`.
type SelectTransition struct {
	TransPos token.Pos
	Exprs    []Expr
	Cases    []*SelectCase
}

func (t *SelectTransition) Pos() token.Pos  { return t.TransPos }
func (t *SelectTransition) transitionNode() {}

// SelectCase is one arm of a select transition. A default arm has IsDefault
// set and no keys.
type SelectCase struct {
	CasePos   token.Pos
	Keys      []Expr // literals, ranges, masks, or DontCare
	IsDefault bool
	Target    string
}

func (c *SelectCase) Pos() token.Pos { return c.CasePos }

// ControlDecl is a P4 control with local declarations, actions and an apply
// block.
type ControlDecl struct {
	ControlPos token.Pos
	Name       string
	Annots     Annotations
	TypeParams []*TypeParam
	Params     []*Param
	Locals     []Decl
	Actions    []*ActionDecl
	Apply      *BlockStmt
}

func (d *ControlDecl) Pos() token.Pos   { return d.ControlPos }
func (d *ControlDecl) declNode()        {}
func (d *ControlDecl) DeclName() string { return d.Name }

// Action returns the named action, or nil.
func (d *ControlDecl) Action(name string) *ActionDecl {
	for _, a := range d.Actions {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ActionDecl is `action name(params) { body }`.
type ActionDecl struct {
	ActionPos token.Pos
	Name      string
	Params    []*Param
	Body      *BlockStmt
}

func (d *ActionDecl) Pos() token.Pos   { return d.ActionPos }
func (d *ActionDecl) declNode()        {}
func (d *ActionDecl) DeclName() string { return d.Name }

// VarDecl is a local variable declaration `Type name [= expr];`.
type VarDecl struct {
	TypePos token.Pos
	Type    Type
	Name    string
	Init    Expr // may be nil
}

func (d *VarDecl) Pos() token.Pos   { return d.TypePos }
func (d *VarDecl) declNode()        {}
func (d *VarDecl) DeclName() string { return d.Name }

// ExternDecl records an extern object or function signature. OpenDesc treats
// externs as opaque capability markers.
type ExternDecl struct {
	ExternPos token.Pos
	Name      string
	Annots    Annotations
}

func (d *ExternDecl) Pos() token.Pos   { return d.ExternPos }
func (d *ExternDecl) declNode()        {}
func (d *ExternDecl) DeclName() string { return d.Name }

// ---- Statements ----

// BlockStmt is `{ stmts }`.
type BlockStmt struct {
	LBrace token.Pos
	Stmts  []Stmt
}

func (s *BlockStmt) Pos() token.Pos { return s.LBrace }
func (s *BlockStmt) stmtNode()      {}

// IfStmt is `if (cond) then [else else]`. Else is a *BlockStmt or *IfStmt.
type IfStmt struct {
	IfPos token.Pos
	Cond  Expr
	Then  *BlockStmt
	Else  Stmt // nil, *BlockStmt, or *IfStmt
}

func (s *IfStmt) Pos() token.Pos { return s.IfPos }
func (s *IfStmt) stmtNode()      {}

// SwitchCase is one arm of a switch statement.
type SwitchCase struct {
	CasePos   token.Pos
	Keys      []Expr
	IsDefault bool
	Body      *BlockStmt
}

func (c *SwitchCase) Pos() token.Pos { return c.CasePos }

// SwitchStmt is `switch (expr) { case k: {..} ... }`.
type SwitchStmt struct {
	SwitchPos token.Pos
	Tag       Expr
	Cases     []*SwitchCase
}

func (s *SwitchStmt) Pos() token.Pos { return s.SwitchPos }
func (s *SwitchStmt) stmtNode()      {}

// AssignStmt is `lhs = rhs;`.
type AssignStmt struct {
	LHS Expr
	RHS Expr
}

func (s *AssignStmt) Pos() token.Pos { return s.LHS.Pos() }
func (s *AssignStmt) stmtNode()      {}

// CallStmt is an expression statement consisting of a call, such as
// `cmpt_out.emit(hdr);` or `verify_checksum(...)`.
type CallStmt struct {
	Call *CallExpr
}

func (s *CallStmt) Pos() token.Pos { return s.Call.Pos() }
func (s *CallStmt) stmtNode()      {}

// DeclStmt wraps a local declaration appearing in statement position.
type DeclStmt struct {
	Decl Decl
}

func (s *DeclStmt) Pos() token.Pos { return s.Decl.Pos() }
func (s *DeclStmt) stmtNode()      {}

// ReturnStmt is `return;` (P4 controls return nothing).
type ReturnStmt struct {
	ReturnPos token.Pos
}

func (s *ReturnStmt) Pos() token.Pos { return s.ReturnPos }
func (s *ReturnStmt) stmtNode()      {}

// EmptyStmt is a stray `;`.
type EmptyStmt struct {
	SemiPos token.Pos
}

func (s *EmptyStmt) Pos() token.Pos { return s.SemiPos }
func (s *EmptyStmt) stmtNode()      {}

// ---- Types ----

// BitType is `bit<W>`.
type BitType struct {
	BitPos token.Pos
	Width  Expr
}

func (t *BitType) Pos() token.Pos { return t.BitPos }
func (t *BitType) typeNode()      {}

// IntType is `int<W>`.
type IntType struct {
	IntPos token.Pos
	Width  Expr
}

func (t *IntType) Pos() token.Pos { return t.IntPos }
func (t *IntType) typeNode()      {}

// BoolType is `bool`.
type BoolType struct {
	BoolPos token.Pos
}

func (t *BoolType) Pos() token.Pos { return t.BoolPos }
func (t *BoolType) typeNode()      {}

// VarbitType is `varbit<W>`.
type VarbitType struct {
	VarbitPos token.Pos
	MaxWidth  Expr
}

func (t *VarbitType) Pos() token.Pos { return t.VarbitPos }
func (t *VarbitType) typeNode()      {}

// NamedType references a typedef, header, struct, enum, extern, or a template
// type parameter; TypeArgs carries instantiation arguments if present.
type NamedType struct {
	NamePos  token.Pos
	Name     string
	TypeArgs []Type
}

func (t *NamedType) Pos() token.Pos { return t.NamePos }
func (t *NamedType) typeNode()      {}

// VoidType is `void`.
type VoidType struct {
	VoidPos token.Pos
}

func (t *VoidType) Pos() token.Pos { return t.VoidPos }
func (t *VoidType) typeNode()      {}

// ---- Expressions ----

// Ident is a bare identifier.
type Ident struct {
	NamePos token.Pos
	Name    string
}

func (e *Ident) Pos() token.Pos { return e.NamePos }
func (e *Ident) exprNode()      {}

// IntLit is an integer literal, possibly width-prefixed (8w0xFF).
type IntLit struct {
	LitPos token.Pos
	Value  uint64
	Width  int  // 0 if unsized
	Signed bool // true for Ns literals
	Text   string
}

func (e *IntLit) Pos() token.Pos { return e.LitPos }
func (e *IntLit) exprNode()      {}

// BoolLit is true/false.
type BoolLit struct {
	LitPos token.Pos
	Value  bool
}

func (e *BoolLit) Pos() token.Pos { return e.LitPos }
func (e *BoolLit) exprNode()      {}

// StringLit is a string literal (used in annotations).
type StringLit struct {
	LitPos token.Pos
	Value  string
}

func (e *StringLit) Pos() token.Pos { return e.LitPos }
func (e *StringLit) exprNode()      {}

// MemberExpr is `x.member`.
type MemberExpr struct {
	X      Expr
	Member string
}

func (e *MemberExpr) Pos() token.Pos { return e.X.Pos() }
func (e *MemberExpr) exprNode()      {}

// Path renders the dotted path of a member chain rooted at an identifier,
// e.g. "ctx.use_rss". It returns "" if the chain is not ident-rooted.
func (e *MemberExpr) Path() string {
	switch x := e.X.(type) {
	case *Ident:
		return x.Name + "." + e.Member
	case *MemberExpr:
		if p := x.Path(); p != "" {
			return p + "." + e.Member
		}
	}
	return ""
}

// SliceExpr is the P4 bit-slice `x[hi:lo]`.
type SliceExpr struct {
	X  Expr
	Hi Expr
	Lo Expr
}

func (e *SliceExpr) Pos() token.Pos { return e.X.Pos() }
func (e *SliceExpr) exprNode()      {}

// IndexExpr is `x[i]` (header stacks; rarely used in descriptions).
type IndexExpr struct {
	X     Expr
	Index Expr
}

func (e *IndexExpr) Pos() token.Pos { return e.X.Pos() }
func (e *IndexExpr) exprNode()      {}

// CallExpr is `fun(args)` or `fun<T...>(args)`.
type CallExpr struct {
	Fun      Expr
	TypeArgs []Type
	Args     []Expr
}

func (e *CallExpr) Pos() token.Pos { return e.Fun.Pos() }
func (e *CallExpr) exprNode()      {}

// Callee returns the terminal name of the called function or method, e.g.
// "emit" for cmpt_out.emit(...), and the receiver expression (nil for bare
// calls).
func (e *CallExpr) Callee() (recv Expr, name string) {
	switch f := e.Fun.(type) {
	case *Ident:
		return nil, f.Name
	case *MemberExpr:
		return f.X, f.Member
	}
	return nil, ""
}

// BinaryExpr is `x op y`.
type BinaryExpr struct {
	Op token.Kind
	X  Expr
	Y  Expr
}

func (e *BinaryExpr) Pos() token.Pos { return e.X.Pos() }
func (e *BinaryExpr) exprNode()      {}

// UnaryExpr is `op x` (!, ~, -).
type UnaryExpr struct {
	OpPos token.Pos
	Op    token.Kind
	X     Expr
}

func (e *UnaryExpr) Pos() token.Pos { return e.OpPos }
func (e *UnaryExpr) exprNode()      {}

// CastExpr is `(Type) x`.
type CastExpr struct {
	LParen token.Pos
	Type   Type
	X      Expr
}

func (e *CastExpr) Pos() token.Pos { return e.LParen }
func (e *CastExpr) exprNode()      {}

// TernaryExpr is `cond ? a : b`.
type TernaryExpr struct {
	Cond Expr
	Then Expr
	Else Expr
}

func (e *TernaryExpr) Pos() token.Pos { return e.Cond.Pos() }
func (e *TernaryExpr) exprNode()      {}

// ParenExpr is `(x)`.
type ParenExpr struct {
	LParen token.Pos
	X      Expr
}

func (e *ParenExpr) Pos() token.Pos { return e.LParen }
func (e *ParenExpr) exprNode()      {}

// RangeExpr is `lo..hi` in select cases.
type RangeExpr struct {
	Lo Expr
	Hi Expr
}

func (e *RangeExpr) Pos() token.Pos { return e.Lo.Pos() }
func (e *RangeExpr) exprNode()      {}

// MaskExpr is `value &&& mask` — approximated in our subset as value &&& mask
// is not lexed; masks appear via BinaryExpr AMP in cases. Retained for
// completeness of select-case modelling when written as `v &&& m`.
type MaskExpr struct {
	Value Expr
	Mask  Expr
}

func (e *MaskExpr) Pos() token.Pos { return e.Value.Pos() }
func (e *MaskExpr) exprNode()      {}

// DontCare is `_` in select cases. The lexer produces IDENT "_"; the parser
// normalizes it to DontCare.
type DontCare struct {
	UnderscorePos token.Pos
}

func (e *DontCare) Pos() token.Pos { return e.UnderscorePos }
func (e *DontCare) exprNode()      {}

// Unparen strips redundant parentheses.
func Unparen(e Expr) Expr {
	for {
		p, ok := e.(*ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
