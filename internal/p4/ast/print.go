package ast

import (
	"fmt"
	"strings"
)

// Fprint renders a node back to P4-like source. The output is canonical (not
// byte-identical to the input) and is used by diagnostics and golden tests.
func Fprint(sb *strings.Builder, n Node) {
	p := printer{sb: sb}
	p.node(n)
}

// Sprint renders a node to a string.
func Sprint(n Node) string {
	var sb strings.Builder
	Fprint(&sb, n)
	return sb.String()
}

// SprintProgram renders a whole program.
func SprintProgram(prog *Program) string {
	var sb strings.Builder
	for i, d := range prog.Decls {
		if i > 0 {
			sb.WriteString("\n")
		}
		Fprint(&sb, d)
		sb.WriteString("\n")
	}
	return sb.String()
}

type printer struct {
	sb     *strings.Builder
	indent int
}

func (p *printer) ws() {
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("    ")
	}
}

func (p *printer) printf(format string, args ...any) {
	fmt.Fprintf(p.sb, format, args...)
}

func (p *printer) annots(as Annotations, sep string) {
	for _, a := range as {
		p.printf("@%s", a.Name)
		if len(a.Args) > 0 {
			p.sb.WriteString("(")
			for i, arg := range a.Args {
				if i > 0 {
					p.sb.WriteString(", ")
				}
				p.node(arg)
			}
			p.sb.WriteString(")")
		}
		p.sb.WriteString(sep)
	}
}

func (p *printer) fields(fs []*Field) {
	p.indent++
	for _, f := range fs {
		p.ws()
		p.annots(f.Annots, " ")
		p.node(f.Type)
		p.printf(" %s;\n", f.Name)
	}
	p.indent--
}

func (p *printer) typeParams(tps []*TypeParam) {
	if len(tps) == 0 {
		return
	}
	p.sb.WriteString("<")
	for i, tp := range tps {
		if i > 0 {
			p.sb.WriteString(", ")
		}
		p.sb.WriteString(tp.Name)
	}
	p.sb.WriteString(">")
}

func (p *printer) params(ps []*Param) {
	p.sb.WriteString("(")
	for i, pr := range ps {
		if i > 0 {
			p.sb.WriteString(", ")
		}
		if d := pr.Dir.String(); d != "" {
			p.printf("%s ", d)
		}
		p.node(pr.Type)
		p.printf(" %s", pr.Name)
	}
	p.sb.WriteString(")")
}

func (p *printer) node(n Node) {
	switch n := n.(type) {
	case *HeaderDecl:
		p.ws()
		p.annots(n.Annots, "\n")
		p.printf("header %s {\n", n.Name)
		p.fields(n.Fields)
		p.ws()
		p.sb.WriteString("}")
	case *StructDecl:
		p.ws()
		p.annots(n.Annots, "\n")
		p.printf("struct %s {\n", n.Name)
		p.fields(n.Fields)
		p.ws()
		p.sb.WriteString("}")
	case *TypedefDecl:
		p.ws()
		p.sb.WriteString("typedef ")
		p.node(n.Type)
		p.printf(" %s;", n.Name)
	case *ConstDecl:
		p.ws()
		p.sb.WriteString("const ")
		p.node(n.Type)
		p.printf(" %s = ", n.Name)
		p.node(n.Value)
		p.sb.WriteString(";")
	case *EnumDecl:
		p.ws()
		p.sb.WriteString("enum ")
		if n.Base != nil {
			p.node(n.Base)
			p.sb.WriteString(" ")
		}
		p.printf("%s {\n", n.Name)
		p.indent++
		for _, m := range n.Members {
			p.ws()
			p.sb.WriteString(m.Name)
			if m.Value != nil {
				p.sb.WriteString(" = ")
				p.node(m.Value)
			}
			p.sb.WriteString(",\n")
		}
		p.indent--
		p.ws()
		p.sb.WriteString("}")
	case *ExternDecl:
		p.ws()
		p.printf("extern %s;", n.Name)
	case *ParserDecl:
		p.ws()
		p.annots(n.Annots, "\n")
		p.printf("parser %s", n.Name)
		p.typeParams(n.TypeParams)
		p.params(n.Params)
		p.sb.WriteString(" {\n")
		p.indent++
		for _, l := range n.Locals {
			p.node(l)
			p.sb.WriteString("\n")
		}
		for _, s := range n.States {
			p.ws()
			p.printf("state %s {\n", s.Name)
			p.indent++
			for _, st := range s.Stmts {
				p.node(st)
			}
			if s.Transition != nil {
				p.ws()
				p.node(s.Transition)
				p.sb.WriteString("\n")
			}
			p.indent--
			p.ws()
			p.sb.WriteString("}\n")
		}
		p.indent--
		p.ws()
		p.sb.WriteString("}")
	case *DirectTransition:
		p.printf("transition %s;", n.Target)
	case *SelectTransition:
		p.sb.WriteString("transition select(")
		for i, e := range n.Exprs {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			p.node(e)
		}
		p.sb.WriteString(") {\n")
		p.indent++
		for _, c := range n.Cases {
			p.ws()
			if c.IsDefault {
				p.sb.WriteString("default")
			} else {
				for i, k := range c.Keys {
					if i > 0 {
						p.sb.WriteString(", ")
					}
					p.node(k)
				}
			}
			p.printf(": %s;\n", c.Target)
		}
		p.indent--
		p.ws()
		p.sb.WriteString("}")
	case *ControlDecl:
		p.ws()
		p.annots(n.Annots, "\n")
		p.printf("control %s", n.Name)
		p.typeParams(n.TypeParams)
		p.params(n.Params)
		p.sb.WriteString(" {\n")
		p.indent++
		for _, l := range n.Locals {
			p.node(l)
			p.sb.WriteString("\n")
		}
		for _, a := range n.Actions {
			p.node(a)
			p.sb.WriteString("\n")
		}
		if n.Apply != nil {
			p.ws()
			p.sb.WriteString("apply ")
			p.block(n.Apply)
			p.sb.WriteString("\n")
		}
		p.indent--
		p.ws()
		p.sb.WriteString("}")
	case *ActionDecl:
		p.ws()
		p.printf("action %s", n.Name)
		p.params(n.Params)
		p.sb.WriteString(" ")
		p.block(n.Body)
	case *VarDecl:
		p.ws()
		p.node(n.Type)
		p.printf(" %s", n.Name)
		if n.Init != nil {
			p.sb.WriteString(" = ")
			p.node(n.Init)
		}
		p.sb.WriteString(";")

	case *BlockStmt:
		p.block(n)
		p.sb.WriteString("\n")
	case *IfStmt:
		p.ws()
		p.ifChain(n)
		p.sb.WriteString("\n")
	case *SwitchStmt:
		p.ws()
		p.sb.WriteString("switch (")
		p.node(n.Tag)
		p.sb.WriteString(") {\n")
		p.indent++
		for _, c := range n.Cases {
			p.ws()
			if c.IsDefault {
				p.sb.WriteString("default")
			} else {
				for i, k := range c.Keys {
					if i > 0 {
						p.sb.WriteString(", ")
					}
					p.node(k)
				}
			}
			p.sb.WriteString(": ")
			p.block(c.Body)
			p.sb.WriteString("\n")
		}
		p.indent--
		p.ws()
		p.sb.WriteString("}\n")
	case *AssignStmt:
		p.ws()
		p.node(n.LHS)
		p.sb.WriteString(" = ")
		p.node(n.RHS)
		p.sb.WriteString(";\n")
	case *CallStmt:
		p.ws()
		p.node(n.Call)
		p.sb.WriteString(";\n")
	case *DeclStmt:
		p.node(n.Decl)
		p.sb.WriteString("\n")
	case *ReturnStmt:
		p.ws()
		p.sb.WriteString("return;\n")
	case *EmptyStmt:
		p.ws()
		p.sb.WriteString(";\n")

	case *BitType:
		p.sb.WriteString("bit<")
		p.node(n.Width)
		p.sb.WriteString(">")
	case *IntType:
		p.sb.WriteString("int<")
		p.node(n.Width)
		p.sb.WriteString(">")
	case *BoolType:
		p.sb.WriteString("bool")
	case *VarbitType:
		p.sb.WriteString("varbit<")
		p.node(n.MaxWidth)
		p.sb.WriteString(">")
	case *VoidType:
		p.sb.WriteString("void")
	case *NamedType:
		p.sb.WriteString(n.Name)
		if len(n.TypeArgs) > 0 {
			p.sb.WriteString("<")
			for i, t := range n.TypeArgs {
				if i > 0 {
					p.sb.WriteString(", ")
				}
				p.node(t)
			}
			p.sb.WriteString(">")
		}

	case *Ident:
		p.sb.WriteString(n.Name)
	case *IntLit:
		if n.Text != "" {
			p.sb.WriteString(n.Text)
		} else {
			p.printf("%d", n.Value)
		}
	case *BoolLit:
		p.printf("%t", n.Value)
	case *StringLit:
		p.printf("%q", n.Value)
	case *MemberExpr:
		p.node(n.X)
		p.printf(".%s", n.Member)
	case *SliceExpr:
		p.node(n.X)
		p.sb.WriteString("[")
		p.node(n.Hi)
		p.sb.WriteString(":")
		p.node(n.Lo)
		p.sb.WriteString("]")
	case *IndexExpr:
		p.node(n.X)
		p.sb.WriteString("[")
		p.node(n.Index)
		p.sb.WriteString("]")
	case *CallExpr:
		p.node(n.Fun)
		if len(n.TypeArgs) > 0 {
			p.sb.WriteString("<")
			for i, t := range n.TypeArgs {
				if i > 0 {
					p.sb.WriteString(", ")
				}
				p.node(t)
			}
			p.sb.WriteString(">")
		}
		p.sb.WriteString("(")
		for i, a := range n.Args {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			p.node(a)
		}
		p.sb.WriteString(")")
	case *BinaryExpr:
		p.node(n.X)
		p.printf(" %s ", n.Op)
		p.node(n.Y)
	case *UnaryExpr:
		p.printf("%s", n.Op)
		p.node(n.X)
	case *CastExpr:
		p.sb.WriteString("(")
		p.node(n.Type)
		p.sb.WriteString(") ")
		p.node(n.X)
	case *TernaryExpr:
		p.node(n.Cond)
		p.sb.WriteString(" ? ")
		p.node(n.Then)
		p.sb.WriteString(" : ")
		p.node(n.Else)
	case *ParenExpr:
		p.sb.WriteString("(")
		p.node(n.X)
		p.sb.WriteString(")")
	case *RangeExpr:
		p.node(n.Lo)
		p.sb.WriteString(" .. ")
		p.node(n.Hi)
	case *MaskExpr:
		p.node(n.Value)
		p.sb.WriteString(" &&& ")
		p.node(n.Mask)
	case *DontCare:
		p.sb.WriteString("_")
	default:
		p.printf("/*?%T*/", n)
	}
}

// ifChain prints if/else-if/else without re-indenting the else keyword.
func (p *printer) ifChain(n *IfStmt) {
	p.sb.WriteString("if (")
	p.node(n.Cond)
	p.sb.WriteString(") ")
	p.block(n.Then)
	if n.Else != nil {
		p.sb.WriteString(" else ")
		switch e := n.Else.(type) {
		case *IfStmt:
			p.ifChain(e)
		case *BlockStmt:
			p.block(e)
		}
	}
}

// block prints a block without a leading indent (caller positions it).
func (p *printer) block(b *BlockStmt) {
	p.sb.WriteString("{\n")
	p.indent++
	for _, s := range b.Stmts {
		p.node(s)
	}
	p.indent--
	p.ws()
	p.sb.WriteString("}")
}
