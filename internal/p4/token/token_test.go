package token

import "testing"

func TestLookup(t *testing.T) {
	cases := map[string]Kind{
		"control": CONTROL, "parser": PARSER, "header": HEADER,
		"transition": TRANSITION, "apply": APPLY, "int": INT_T,
		"myident": IDENT, "Control": IDENT, "": IDENT,
	}
	for in, want := range cases {
		if got := Lookup(in); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestClassification(t *testing.T) {
	if !IDENT.IsLiteral() || !INT.IsLiteral() || !STRING.IsLiteral() {
		t.Error("literal kinds misclassified")
	}
	if !LPAREN.IsOperator() || !SHL.IsOperator() || !DOTDOT.IsOperator() {
		t.Error("operator kinds misclassified")
	}
	if !CONTROL.IsKeyword() || !TRANSITION.IsKeyword() {
		t.Error("keyword kinds misclassified")
	}
	if EOF.IsLiteral() || EOF.IsOperator() || EOF.IsKeyword() {
		t.Error("EOF misclassified")
	}
	if IDENT.IsKeyword() || CONTROL.IsLiteral() {
		t.Error("cross-class leakage")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		CONTROL: "control", SHL: "<<", IDENT: "IDENT", EOF: "EOF",
		DOTDOT: "..", PLUSPLUS: "++",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind should render something")
	}
}

func TestPrecedenceLadder(t *testing.T) {
	// P4/C ladder: || < && < | < ^ < & < == < relational < shift < add < mul.
	ladder := []Kind{LOR, LAND, PIPE, CARET, AMP, EQ, LANGLE, SHL, PLUS, STAR}
	for i := 1; i < len(ladder); i++ {
		if !(ladder[i].Precedence() > ladder[i-1].Precedence()) {
			t.Errorf("%v (%d) should bind tighter than %v (%d)",
				ladder[i], ladder[i].Precedence(), ladder[i-1], ladder[i-1].Precedence())
		}
	}
	for _, k := range []Kind{LPAREN, SEMI, IDENT, EOF, ASSIGN} {
		if k.Precedence() != 0 {
			t.Errorf("%v should have no binary precedence", k)
		}
	}
	if NEQ.Precedence() != EQ.Precedence() || GE.Precedence() != LANGLE.Precedence() {
		t.Error("peer operators must share precedence")
	}
}

func TestPosString(t *testing.T) {
	p := Pos{File: "nic.p4", Line: 3, Col: 7}
	if p.String() != "nic.p4:3:7" {
		t.Errorf("pos = %q", p)
	}
	if (Pos{Line: 1, Col: 1}).String() != "1:1" {
		t.Error("file-less pos format")
	}
	if (Pos{}).IsValid() {
		t.Error("zero pos should be invalid")
	}
	if !p.IsValid() {
		t.Error("real pos should be valid")
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: IDENT, Lit: "ctx"}
	if tok.String() != `IDENT("ctx")` {
		t.Errorf("token = %q", tok.String())
	}
	if (Token{Kind: SEMI}).String() != ";" {
		t.Errorf("op token = %q", Token{Kind: SEMI}.String())
	}
}
