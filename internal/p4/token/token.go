// Package token defines the lexical tokens of the P4-16 subset understood by
// the OpenDesc compiler, along with source-position bookkeeping shared by the
// lexer, parser and diagnostics.
package token

import "fmt"

// Kind enumerates the lexical token kinds.
type Kind int

// Token kinds. Literal kinds carry their text in Token.Lit.
const (
	ILLEGAL Kind = iota
	EOF
	COMMENT // // ... or /* ... */ (only surfaced when lexer.KeepComments)

	literalBeg
	IDENT    // descriptor
	INT      // 42, 0x1F
	WIDTHINT // 8w0x1F, 4s15
	STRING   // "rss"
	PREPROC  // #include <...> (whole line, normally skipped)
	literalEnd

	operatorBeg
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	LANGLE   // <
	RANGLE   // >
	SHL      // <<
	SHR      // >>
	LE       // <=
	GE       // >=
	EQ       // ==
	NEQ      // !=
	ASSIGN   // =
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	AMP      // &
	PIPE     // |
	CARET    // ^
	TILDE    // ~
	NOT      // !
	LAND     // &&
	LOR      // ||
	DOT      // .
	COMMA    // ,
	SEMI     // ;
	COLON    // :
	QUESTION // ?
	AT       // @
	PLUSPLUS // ++ (P4 concatenation)
	DOTDOT   // .. (range in select cases, as in 0x10..0x1F)
	operatorEnd

	keywordBeg
	ACTION
	APPLY
	BIT
	BOOL
	CONST
	CONTROL
	DEFAULT
	ELSE
	ENUM
	ERROR
	EXTERN
	FALSE
	HEADER
	IF
	IN
	INOUT
	INT_T // "int" type keyword
	OUT
	PACKAGE
	PARSER
	RETURN
	SELECT
	STATE
	STRUCT
	SWITCH
	TRANSITION
	TRUE
	TYPEDEF
	VARBIT
	VOID
	keywordEnd
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", COMMENT: "COMMENT",
	IDENT: "IDENT", INT: "INT", WIDTHINT: "WIDTHINT", STRING: "STRING", PREPROC: "PREPROC",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACKET: "[", RBRACKET: "]",
	LANGLE: "<", RANGLE: ">", SHL: "<<", SHR: ">>", LE: "<=", GE: ">=",
	EQ: "==", NEQ: "!=", ASSIGN: "=", PLUS: "+", MINUS: "-", STAR: "*",
	SLASH: "/", PERCENT: "%", AMP: "&", PIPE: "|", CARET: "^", TILDE: "~",
	NOT: "!", LAND: "&&", LOR: "||", DOT: ".", COMMA: ",", SEMI: ";",
	COLON: ":", QUESTION: "?", AT: "@", PLUSPLUS: "++", DOTDOT: "..",
	ACTION: "action", APPLY: "apply", BIT: "bit", BOOL: "bool", CONST: "const",
	CONTROL: "control", DEFAULT: "default", ELSE: "else", ENUM: "enum",
	ERROR: "error", EXTERN: "extern", FALSE: "false", HEADER: "header",
	IF: "if", IN: "in", INOUT: "inout", INT_T: "int", OUT: "out",
	PACKAGE: "package", PARSER: "parser", RETURN: "return", SELECT: "select",
	STATE: "state", STRUCT: "struct", SWITCH: "switch", TRANSITION: "transition",
	TRUE: "true", TYPEDEF: "typedef", VARBIT: "varbit", VOID: "void",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsLiteral reports whether the kind is a literal token.
func (k Kind) IsLiteral() bool { return k > literalBeg && k < literalEnd }

// IsOperator reports whether the kind is an operator or delimiter.
func (k Kind) IsOperator() bool { return k > operatorBeg && k < operatorEnd }

// IsKeyword reports whether the kind is a reserved word.
func (k Kind) IsKeyword() bool { return k > keywordBeg && k < keywordEnd }

var keywords = map[string]Kind{
	"action": ACTION, "apply": APPLY, "bit": BIT, "bool": BOOL,
	"const": CONST, "control": CONTROL, "default": DEFAULT, "else": ELSE,
	"enum": ENUM, "error": ERROR, "extern": EXTERN, "false": FALSE,
	"header": HEADER, "if": IF, "in": IN, "inout": INOUT, "int": INT_T,
	"out": OUT, "package": PACKAGE, "parser": PARSER, "return": RETURN,
	"select": SELECT, "state": STATE, "struct": STRUCT, "switch": SWITCH,
	"transition": TRANSITION, "true": TRUE, "typedef": TYPEDEF,
	"varbit": VARBIT, "void": VOID,
}

// Lookup maps an identifier to its keyword kind, or IDENT.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Pos is a source position (1-based line and column, 0-based byte offset).
type Pos struct {
	File   string
	Offset int
	Line   int
	Col    int
}

// IsValid reports whether the position carries real location data.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders the position as file:line:col.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is a single lexical token with its source position and literal text.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT, INT, WIDTHINT, STRING, COMMENT, PREPROC
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	if t.Lit != "" && t.Kind != EOF {
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}

// Precedence returns the binary-operator precedence for the kind, with higher
// binding tighter, or 0 if the kind is not a binary operator. The ladder
// follows the P4-16 specification (which matches C for the shared operators).
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case PIPE:
		return 3
	case CARET:
		return 4
	case AMP:
		return 5
	case EQ, NEQ:
		return 6
	case LANGLE, RANGLE, LE, GE:
		return 7
	case SHL, SHR:
		return 8
	case PLUS, MINUS, PLUSPLUS:
		return 9
	case STAR, SLASH, PERCENT:
		return 10
	}
	return 0
}
