// Package lexer tokenizes P4-16 source for the OpenDesc compiler.
//
// The lexer handles the full lexical grammar needed by the subset: identifiers
// and keywords, decimal/hex/octal/binary integers, width-prefixed integers
// such as 8w0x1F and 4s7, string literals, line and block comments, and
// preprocessor lines (which are recorded as PREPROC tokens so the parser can
// skip or inspect them).
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"opendesc/internal/p4/token"
)

// Error is a lexical error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer turns a source buffer into a token stream.
type Lexer struct {
	src  string
	file string

	offset int // byte offset of ch
	rdOff  int // byte offset after ch
	ch     rune

	line    int
	col     int
	errs    []*Error
	maxErrs int

	// KeepComments surfaces COMMENT tokens instead of discarding them.
	KeepComments bool
	// KeepPreproc surfaces PREPROC tokens instead of discarding them.
	KeepPreproc bool
}

const eofRune = rune(-1)

// New returns a lexer over src; file is used for positions only.
func New(file, src string) *Lexer {
	l := &Lexer{src: src, file: file, line: 1, col: 0, maxErrs: 25}
	l.next()
	return l
}

// Errors returns the lexical errors accumulated so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	if len(l.errs) < l.maxErrs {
		l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

// next advances to the next rune.
func (l *Lexer) next() {
	if l.rdOff >= len(l.src) {
		l.offset = len(l.src)
		l.ch = eofRune
		return
	}
	if l.ch == '\n' {
		l.line++
		l.col = 0
	}
	r, w := rune(l.src[l.rdOff]), 1
	if r >= utf8.RuneSelf {
		r, w = utf8.DecodeRuneInString(l.src[l.rdOff:])
	}
	l.offset = l.rdOff
	l.rdOff += w
	l.ch = r
	l.col++
}

func (l *Lexer) peek() rune {
	if l.rdOff >= len(l.src) {
		return eofRune
	}
	r := rune(l.src[l.rdOff])
	if r >= utf8.RuneSelf {
		r, _ = utf8.DecodeRuneInString(l.src[l.rdOff:])
	}
	return r
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Offset: l.offset, Line: l.line, Col: l.col}
}

func isLetter(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isDigit(r rune) bool { return r >= '0' && r <= '9' }

func isHexDigit(r rune) bool {
	return isDigit(r) || (r >= 'a' && r <= 'f') || (r >= 'A' && r <= 'F')
}

// Next returns the next token. At end of input it returns EOF forever.
func (l *Lexer) Next() token.Token {
	for {
		tok := l.scan()
		if tok.Kind == token.COMMENT && !l.KeepComments {
			continue
		}
		if tok.Kind == token.PREPROC && !l.KeepPreproc {
			continue
		}
		return tok
	}
}

// All tokenizes the remaining input (excluding EOF).
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		if t.Kind == token.EOF {
			return toks
		}
		toks = append(toks, t)
	}
}

func (l *Lexer) skipSpace() {
	for l.ch == ' ' || l.ch == '\t' || l.ch == '\n' || l.ch == '\r' {
		l.next()
	}
}

func (l *Lexer) scan() token.Token {
	l.skipSpace()
	pos := l.pos()
	switch ch := l.ch; {
	case ch == eofRune:
		return token.Token{Kind: token.EOF, Pos: pos}
	case isLetter(ch):
		lit := l.scanIdent()
		// A width-prefixed integer like 8w0x1F is scanned as INT then ident
		// only when the digits come first; identifiers never start with a
		// digit, so no ambiguity here.
		return token.Token{Kind: token.Lookup(lit), Lit: lit, Pos: pos}
	case isDigit(ch):
		return l.scanNumber(pos)
	case ch == '"':
		return l.scanString(pos)
	case ch == '#':
		return l.scanPreproc(pos)
	}
	return l.scanOperator(pos)
}

func (l *Lexer) scanIdent() string {
	start := l.offset
	for isLetter(l.ch) || isDigit(l.ch) {
		l.next()
	}
	return l.src[start:l.offset]
}

// scanNumber handles 42, 0x2A, 0b101, 0o17, and width-prefixed forms
// 8w0x1F / 8w255 / 4s-? (P4 allows 4s15; the sign is not part of the literal).
func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.offset
	for isDigit(l.ch) {
		l.next()
	}
	// Width prefix: digits followed by 'w' or 's' then a number.
	if l.ch == 'w' || l.ch == 's' {
		l.next()
		l.scanNumberTail(pos)
		lit := l.src[start:l.offset]
		return token.Token{Kind: token.WIDTHINT, Lit: lit, Pos: pos}
	}
	// Base prefix directly (0x, 0b, 0o) — only valid if the leading run was "0".
	if l.src[start:l.offset] == "0" && (l.ch == 'x' || l.ch == 'X' || l.ch == 'b' || l.ch == 'B' || l.ch == 'o' || l.ch == 'O') {
		base := l.ch
		l.next()
		n := 0
		for isHexDigit(l.ch) || l.ch == '_' {
			if l.ch != '_' {
				n++
			}
			l.next()
		}
		if n == 0 {
			l.errorf(pos, "malformed base-%c integer literal", base)
			return token.Token{Kind: token.ILLEGAL, Lit: l.src[start:l.offset], Pos: pos}
		}
		return token.Token{Kind: token.INT, Lit: l.src[start:l.offset], Pos: pos}
	}
	// Underscore separators in decimal literals.
	for isDigit(l.ch) || l.ch == '_' {
		l.next()
	}
	return token.Token{Kind: token.INT, Lit: l.src[start:l.offset], Pos: pos}
}

// scanNumberTail scans the numeric part after a width prefix.
func (l *Lexer) scanNumberTail(pos token.Pos) {
	if l.ch == '0' && (l.peek() == 'x' || l.peek() == 'X' || l.peek() == 'b' || l.peek() == 'B' || l.peek() == 'o' || l.peek() == 'O') {
		l.next() // 0
		l.next() // base marker
		n := 0
		for isHexDigit(l.ch) || l.ch == '_' {
			if l.ch != '_' {
				n++
			}
			l.next()
		}
		if n == 0 {
			l.errorf(pos, "malformed width-prefixed integer literal")
		}
		return
	}
	n := 0
	for isDigit(l.ch) || l.ch == '_' {
		if l.ch != '_' {
			n++
		}
		l.next()
	}
	if n == 0 {
		l.errorf(pos, "width prefix not followed by digits")
	}
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	var sb strings.Builder
	l.next() // consume opening quote
	for {
		switch l.ch {
		case eofRune, '\n':
			l.errorf(pos, "unterminated string literal")
			return token.Token{Kind: token.ILLEGAL, Lit: sb.String(), Pos: pos}
		case '"':
			l.next()
			return token.Token{Kind: token.STRING, Lit: sb.String(), Pos: pos}
		case '\\':
			l.next()
			switch l.ch {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '"':
				sb.WriteRune(l.ch)
			default:
				l.errorf(l.pos(), "unknown escape sequence \\%c", l.ch)
				sb.WriteRune(l.ch)
			}
			l.next()
		default:
			sb.WriteRune(l.ch)
			l.next()
		}
	}
}

// scanPreproc consumes a whole preprocessor line (#include, #define, ...).
func (l *Lexer) scanPreproc(pos token.Pos) token.Token {
	start := l.offset
	for l.ch != '\n' && l.ch != eofRune {
		l.next()
	}
	return token.Token{Kind: token.PREPROC, Lit: strings.TrimRight(l.src[start:l.offset], "\r"), Pos: pos}
}

func (l *Lexer) scanLineComment(pos token.Pos) token.Token {
	start := l.offset
	for l.ch != '\n' && l.ch != eofRune {
		l.next()
	}
	return token.Token{Kind: token.COMMENT, Lit: l.src[start:l.offset], Pos: pos}
}

func (l *Lexer) scanBlockComment(pos token.Pos) token.Token {
	start := l.offset
	l.next() // '*'
	for {
		if l.ch == eofRune {
			l.errorf(pos, "unterminated block comment")
			return token.Token{Kind: token.COMMENT, Lit: l.src[start:l.offset], Pos: pos}
		}
		if l.ch == '*' && l.peek() == '/' {
			l.next()
			l.next()
			return token.Token{Kind: token.COMMENT, Lit: l.src[start:l.offset], Pos: pos}
		}
		l.next()
	}
}

// two emits a two-character operator token.
func (l *Lexer) two(kind token.Kind, pos token.Pos) token.Token {
	l.next()
	l.next()
	return token.Token{Kind: kind, Pos: pos}
}

// one emits a single-character operator token.
func (l *Lexer) one(kind token.Kind, pos token.Pos) token.Token {
	l.next()
	return token.Token{Kind: kind, Pos: pos}
}

func (l *Lexer) scanOperator(pos token.Pos) token.Token {
	switch l.ch {
	case '(':
		return l.one(token.LPAREN, pos)
	case ')':
		return l.one(token.RPAREN, pos)
	case '{':
		return l.one(token.LBRACE, pos)
	case '}':
		return l.one(token.RBRACE, pos)
	case '[':
		return l.one(token.LBRACKET, pos)
	case ']':
		return l.one(token.RBRACKET, pos)
	case '<':
		switch l.peek() {
		case '<':
			return l.two(token.SHL, pos)
		case '=':
			return l.two(token.LE, pos)
		}
		return l.one(token.LANGLE, pos)
	case '>':
		switch l.peek() {
		case '>':
			return l.two(token.SHR, pos)
		case '=':
			return l.two(token.GE, pos)
		}
		return l.one(token.RANGLE, pos)
	case '=':
		if l.peek() == '=' {
			return l.two(token.EQ, pos)
		}
		return l.one(token.ASSIGN, pos)
	case '!':
		if l.peek() == '=' {
			return l.two(token.NEQ, pos)
		}
		return l.one(token.NOT, pos)
	case '+':
		if l.peek() == '+' {
			return l.two(token.PLUSPLUS, pos)
		}
		return l.one(token.PLUS, pos)
	case '-':
		return l.one(token.MINUS, pos)
	case '*':
		return l.one(token.STAR, pos)
	case '/':
		switch l.peek() {
		case '/':
			return l.scanLineComment(pos)
		case '*':
			l.next() // '/'
			return l.scanBlockComment(pos)
		}
		return l.one(token.SLASH, pos)
	case '%':
		return l.one(token.PERCENT, pos)
	case '&':
		if l.peek() == '&' {
			return l.two(token.LAND, pos)
		}
		return l.one(token.AMP, pos)
	case '|':
		if l.peek() == '|' {
			return l.two(token.LOR, pos)
		}
		return l.one(token.PIPE, pos)
	case '^':
		return l.one(token.CARET, pos)
	case '~':
		return l.one(token.TILDE, pos)
	case '.':
		if l.peek() == '.' {
			return l.two(token.DOTDOT, pos)
		}
		return l.one(token.DOT, pos)
	case ',':
		return l.one(token.COMMA, pos)
	case ';':
		return l.one(token.SEMI, pos)
	case ':':
		return l.one(token.COLON, pos)
	case '?':
		return l.one(token.QUESTION, pos)
	case '@':
		return l.one(token.AT, pos)
	}
	ch := l.ch
	l.errorf(pos, "illegal character %q", ch)
	l.next()
	return token.Token{Kind: token.ILLEGAL, Lit: string(ch), Pos: pos}
}
