package lexer

import (
	"strings"
	"testing"

	"opendesc/internal/p4/token"
)

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	src := `header h { bit<32> rss_val; }`
	got := kinds(New("t.p4", src).All())
	want := []token.Kind{
		token.HEADER, token.IDENT, token.LBRACE,
		token.BIT, token.LANGLE, token.INT, token.RANGLE,
		token.IDENT, token.SEMI, token.RBRACE,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	cases := map[string]token.Kind{
		"<<": token.SHL, ">>": token.SHR, "<=": token.LE, ">=": token.GE,
		"==": token.EQ, "!=": token.NEQ, "&&": token.LAND, "||": token.LOR,
		"++": token.PLUSPLUS, "..": token.DOTDOT, "@": token.AT,
		"~": token.TILDE, "^": token.CARET, "?": token.QUESTION,
	}
	for src, want := range cases {
		toks := New("t.p4", src).All()
		if len(toks) != 1 || toks[0].Kind != want {
			t.Errorf("lex(%q) = %v, want single %s", src, toks, want)
		}
	}
}

func TestIntegerLiterals(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
	}{
		{"42", token.INT},
		{"0x1F", token.INT},
		{"0b1010", token.INT},
		{"0o17", token.INT},
		{"1_000_000", token.INT},
		{"8w255", token.WIDTHINT},
		{"8w0xFF", token.WIDTHINT},
		{"4s7", token.WIDTHINT},
		{"32w0b1111", token.WIDTHINT},
	}
	for _, c := range cases {
		toks := New("t.p4", c.src).All()
		if len(toks) != 1 {
			t.Errorf("lex(%q): got %d tokens %v, want 1", c.src, len(toks), toks)
			continue
		}
		if toks[0].Kind != c.kind || toks[0].Lit != c.src {
			t.Errorf("lex(%q) = %v, want %s(%q)", c.src, toks[0], c.kind, c.src)
		}
	}
}

func TestMalformedNumbers(t *testing.T) {
	l := New("t.p4", "0x")
	l.All()
	if len(l.Errors()) == 0 {
		t.Error("0x should produce a lexical error")
	}
	l2 := New("t.p4", "8w")
	l2.All()
	if len(l2.Errors()) == 0 {
		t.Error("8w should produce a lexical error")
	}
}

func TestStringLiterals(t *testing.T) {
	toks := New("t.p4", `@semantic("rss")`).All()
	if len(toks) != 5 {
		t.Fatalf("got %v", toks)
	}
	if toks[3].Kind != token.STRING || toks[3].Lit != "rss" {
		t.Errorf("string literal = %v, want STRING(rss)", toks[3])
	}
}

func TestStringEscapes(t *testing.T) {
	toks := New("t.p4", `"a\n\t\"b\\"`).All()
	if len(toks) != 1 || toks[0].Lit != "a\n\t\"b\\" {
		t.Errorf("got %q", toks[0].Lit)
	}
}

func TestUnterminatedString(t *testing.T) {
	l := New("t.p4", "\"abc\n")
	l.All()
	if len(l.Errors()) == 0 {
		t.Error("unterminated string should error")
	}
}

func TestComments(t *testing.T) {
	src := "a // line comment\nb /* block\ncomment */ c"
	toks := New("t.p4", src).All()
	if len(toks) != 3 {
		t.Fatalf("comments not skipped: %v", toks)
	}
	l := New("t.p4", src)
	l.KeepComments = true
	if n := len(l.All()); n != 5 {
		t.Errorf("KeepComments: got %d tokens, want 5", n)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	l := New("t.p4", "/* never ends")
	l.KeepComments = true
	l.All()
	if len(l.Errors()) == 0 {
		t.Error("unterminated block comment should error")
	}
}

func TestPreprocessorSkipped(t *testing.T) {
	src := "#include <core.p4>\nheader h { }"
	toks := New("t.p4", src).All()
	if toks[0].Kind != token.HEADER {
		t.Errorf("preproc line not skipped: first token %v", toks[0])
	}
	l := New("t.p4", src)
	l.KeepPreproc = true
	toks = l.All()
	if toks[0].Kind != token.PREPROC || !strings.HasPrefix(toks[0].Lit, "#include") {
		t.Errorf("KeepPreproc: first token %v", toks[0])
	}
}

func TestPositions(t *testing.T) {
	src := "header\n  foo"
	toks := New("t.p4", src).All()
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token pos = %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("second token pos = %v, want 2:3", toks[1].Pos)
	}
	if toks[1].Pos.File != "t.p4" {
		t.Errorf("file = %q", toks[1].Pos.File)
	}
}

func TestIllegalCharacter(t *testing.T) {
	l := New("t.p4", "a $ b")
	toks := l.All()
	if len(l.Errors()) == 0 {
		t.Error("expected error for '$'")
	}
	// Lexer must keep going after an illegal character.
	if len(toks) != 3 {
		t.Errorf("got %v", toks)
	}
}

func TestKeywordsVsIdents(t *testing.T) {
	toks := New("t.p4", "control controls transition transitions").All()
	want := []token.Kind{token.CONTROL, token.IDENT, token.TRANSITION, token.IDENT}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New("t.p4", "")
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("call %d: got %v, want EOF", i, tok)
		}
	}
}

func TestDotVsDotDot(t *testing.T) {
	toks := New("t.p4", "a.b 0..5").All()
	want := []token.Kind{token.IDENT, token.DOT, token.IDENT, token.INT, token.DOTDOT, token.INT}
	if len(toks) != len(want) {
		t.Fatalf("got %v", toks)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}
