package lexer_test

import (
	"testing"

	"opendesc/internal/nic"
	"opendesc/internal/p4/lexer"
	"opendesc/internal/p4/token"
)

// FuzzLex asserts the lexer's robustness invariants on arbitrary input: it
// never panics, always terminates, token positions never run backwards, and
// the stream stays at EOF once exhausted. Seeded with the six bundled NIC
// interface descriptions (the realistic corpus) plus adversarial fragments.
// This lives in an external test package so it can import internal/nic
// without a cycle (nic → parser → lexer).
func FuzzLex(f *testing.F) {
	for _, m := range nic.All() {
		f.Add(m.Source)
	}
	for _, s := range []string{
		"",
		"header h { bit<32> rss; } // trailing comment",
		"/* unterminated block",
		"\"unterminated string",
		"0x 0b 0o 8w15 4s-2 1..5 ++ <= >= != &&& |+| ..",
		"@semantic(\"rss\")\n#include <core.p4>\n",
		"ident_ÿ�\x00mixed",
		"\xf0\x9f\x92\xbe invalid \xff bytes",
		"1234567890123456789012345678901234567890w1",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Bound pathological inputs so the fuzzer doesn't time out on
		// megabyte identifiers.
		if len(src) > 1<<16 {
			t.Skip()
		}
		l := lexer.New("fuzz.p4", src)
		l.KeepComments = true
		l.KeepPreproc = true
		prevOff := -1
		n := 0
		for {
			tok := l.Next()
			if tok.Kind == token.EOF {
				break
			}
			if tok.Pos.Offset < prevOff {
				t.Fatalf("token %d (%v %q) at offset %d before previous offset %d",
					n, tok.Kind, tok.Lit, tok.Pos.Offset, prevOff)
			}
			prevOff = tok.Pos.Offset
			n++
			// Every non-EOF token consumes at least one byte, so the
			// stream cannot produce more tokens than input bytes.
			if n > len(src) {
				t.Fatalf("%d tokens from %d bytes: lexer is not making progress", n, len(src))
			}
		}
		// EOF is sticky.
		for i := 0; i < 3; i++ {
			if tok := l.Next(); tok.Kind != token.EOF {
				t.Fatalf("Next after EOF returned %v %q", tok.Kind, tok.Lit)
			}
		}
	})
}
