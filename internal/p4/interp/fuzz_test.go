package interp_test

import (
	"testing"

	"opendesc/internal/nic"
	"opendesc/internal/p4/interp"
	"opendesc/internal/p4/sema"
)

// fuzzEnv answers every context lookup with the same fuzz-chosen value, so
// select expressions over per-queue registers see arbitrary states.
type fuzzEnv uint64

func (e fuzzEnv) Lookup(path string) (sema.Value, bool) {
	return sema.UintValue(uint64(e), 64), true
}

// FuzzInterp runs the six bundled NIC DescParsers over arbitrary descriptor
// bytes and context register values. The properties are the interpreter's
// documented invariants: no panic, bits consumed never exceed the input,
// the state walk always visits at least the start state, and extracted
// values are recorded for every accepted run. Errors (truncated input,
// step-bound exhaustion) are legal outcomes — not panicking is the point.
func FuzzInterp(f *testing.F) {
	models := nic.All()
	for i := range models {
		f.Add(uint8(i), uint64(0), []byte{})
		f.Add(uint8(i), uint64(1), make([]byte, 16))
		f.Add(uint8(i), uint64(2), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
		f.Add(uint8(i), uint64(3), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
			16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31})
	}
	f.Fuzz(func(t *testing.T, modelIdx uint8, ctxVal uint64, data []byte) {
		if len(data) > 1<<12 {
			t.Skip()
		}
		m := models[int(modelIdx)%len(models)]
		inst, err := m.TxInstance()
		if err != nil {
			t.Skip() // model without a TX DescParser
		}
		p, err := interp.New(m.Info, inst, "")
		if err != nil {
			t.Fatalf("%s: New: %v", m.Name, err)
		}
		res, err := p.Run(data, fuzzEnv(ctxVal))
		if err != nil {
			return // rejected input is fine; not panicking is the property
		}
		if res.BitsConsumed < 0 || res.BitsConsumed > len(data)*8 {
			t.Fatalf("%s: consumed %d bits of %d available", m.Name, res.BitsConsumed, len(data)*8)
		}
		if len(res.States) == 0 {
			t.Fatalf("%s: successful run visited no states", m.Name)
		}
		if res.Accepted && res.States[len(res.States)-1] != "accept" {
			// Engines record the visited states including the terminal
			// accept pseudo-state only via Accepted; just ensure the
			// extracted values are addressable.
			for name := range res.Values {
				if name == "" {
					t.Fatalf("%s: empty value name in %v", m.Name, res.Values)
				}
			}
		}
	})
}
