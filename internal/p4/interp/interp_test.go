package interp

import (
	"testing"

	"opendesc/internal/nic"
	"opendesc/internal/p4/parser"
	"opendesc/internal/p4/sema"
	"opendesc/internal/pkt"
	"opendesc/internal/workload"
)

// pnaPacketParser is a PNA-style packet parser covering the protocols of the
// workload generator: Ethernet, single 802.1Q tag, IPv4/IPv6, TCP/UDP.
const pnaPacketParser = `
header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> ether_type;
}
header vlan_t {
    bit<16> tci;
    bit<16> ether_type;
}
header ipv4_t {
    bit<8>  version_ihl;
    bit<8>  dscp;
    bit<16> total_len;
    bit<16> identification;
    bit<16> flags_frag;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}
header ipv6_t {
    bit<32>  ver_tc_flow;
    bit<16>  payload_len;
    bit<8>   next_hdr;
    bit<8>   hop_limit;
    bit<64>  src_hi;
    bit<64>  src_lo;
    bit<64>  dst_hi;
    bit<64>  dst_lo;
}
header tcp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<32> seq;
    bit<32> ack;
    bit<8>  data_off_rsvd;
    bit<8>  flags;
    bit<16> window;
    bit<16> checksum;
    bit<16> urgent;
}
header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}
struct headers_t {
    ethernet_t ethernet;
    vlan_t     vlan;
    ipv4_t     ipv4;
    ipv6_t     ipv6;
    tcp_t      tcp;
    udp_t      udp;
}
struct null_ctx_t { bit<1> rsvd; }

@bind("CTX", "null_ctx_t")
@bind("H", "headers_t")
parser PacketParser<CTX, H>(
    packet_in pin,
    in CTX ctx,
    out H hdr)
{
    state start {
        pin.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            0x8100: parse_vlan;
            0x88A8: parse_vlan;
            0x0800: parse_ipv4;
            0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_vlan {
        pin.extract(hdr.vlan);
        transition select(hdr.vlan.ether_type) {
            0x0800: parse_ipv4;
            0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_ipv4 {
        pin.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            6:  parse_tcp;
            17: parse_udp;
            default: accept;
        }
    }
    state parse_ipv6 {
        pin.extract(hdr.ipv6);
        transition select(hdr.ipv6.next_hdr) {
            6:  parse_tcp;
            17: parse_udp;
            default: accept;
        }
    }
    state parse_tcp {
        pin.extract(hdr.tcp);
        transition accept;
    }
    state parse_udp {
        pin.extract(hdr.udp);
        transition accept;
    }
}
`

func packetParser(t *testing.T) *Parser {
	t.Helper()
	prog, err := parser.Parse("pna.p4", pnaPacketParser)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := info.BindParser(prog.Parser("PacketParser"), nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(info, inst, "")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPacketParserMatchesGoDecoder cross-validates the P4 interpreter
// against the hand-written decoder over a full synthetic trace: both must
// agree on layers, addresses, ports and VLAN tags for every packet.
func TestPacketParserMatchesGoDecoder(t *testing.T) {
	p := packetParser(t)
	spec := workload.Spec{
		Packets: 300, Flows: 24, PayloadBytes: 48,
		TCPFraction: 0.5, VLANFraction: 0.4, TunnelFraction: 0.1,
		KVFraction: 0.1, Seed: 5,
	}
	tr := workload.MustGenerate(spec)
	var in pkt.Info
	for i, data := range tr.Packets {
		if err := pkt.Decode(data, &in); err != nil {
			t.Fatalf("pkt %d: go decode: %v", i, err)
		}
		res, err := p.Run(data, nil)
		if err != nil {
			t.Fatalf("pkt %d: interp: %v", i, err)
		}
		if !res.Accepted {
			t.Fatalf("pkt %d rejected: states %v", i, res.States)
		}
		if res.ValidHeaders["hdr.vlan"] != in.HasVLAN() {
			t.Fatalf("pkt %d: vlan presence disagrees", i)
		}
		if in.HasVLAN() && res.Values["hdr.vlan.tci"] != uint64(in.OuterTCI()) {
			t.Fatalf("pkt %d: tci %#x vs %#x", i, res.Values["hdr.vlan.tci"], in.OuterTCI())
		}
		switch in.L3 {
		case pkt.L3IPv4:
			if !res.ValidHeaders["hdr.ipv4"] {
				t.Fatalf("pkt %d: ipv4 not parsed", i)
			}
			wantSrc := uint64(in.SrcIP[0])<<24 | uint64(in.SrcIP[1])<<16 | uint64(in.SrcIP[2])<<8 | uint64(in.SrcIP[3])
			if res.Values["hdr.ipv4.src_addr"] != wantSrc {
				t.Fatalf("pkt %d: src %#x vs %#x", i, res.Values["hdr.ipv4.src_addr"], wantSrc)
			}
			if res.Values["hdr.ipv4.identification"] != uint64(in.IPID) {
				t.Fatalf("pkt %d: ipid", i)
			}
		}
		switch in.L4 {
		case pkt.L4TCP:
			if res.Values["hdr.tcp.dst_port"] != uint64(in.DstPort) {
				t.Fatalf("pkt %d: tcp port", i)
			}
			if res.Values["hdr.tcp.flags"] != uint64(in.TCPFlags) {
				t.Fatalf("pkt %d: tcp flags", i)
			}
		case pkt.L4UDP:
			if res.Values["hdr.udp.dst_port"] != uint64(in.DstPort) {
				t.Fatalf("pkt %d: udp port", i)
			}
		}
	}
}

func TestPacketParserNonIPAccepts(t *testing.T) {
	p := packetParser(t)
	arp := pkt.NewBuilder().Build()
	arp[12], arp[13] = 0x08, 0x06
	res, err := p.Run(arp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.ValidHeaders["hdr.ipv4"] {
		t.Errorf("arp handling: accepted=%v headers=%v", res.Accepted, res.ValidHeaders)
	}
}

func TestTruncatedStreamErrors(t *testing.T) {
	p := packetParser(t)
	full := pkt.NewBuilder().WithTCP(1, 2, 0).Build()
	if _, err := p.Run(full[:20], nil); err == nil {
		t.Error("truncated packet should error mid-extract")
	}
}

// TestDescParserInterpMatchesStaticLayout runs the qdma DescParser
// dynamically over descriptors built from the static layouts: every field
// the static analysis places must be extracted at the same value.
func TestDescParserInterpMatchesStaticLayout(t *testing.T) {
	m := nic.MustLoad("qdma")
	inst, err := m.TxInstance()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(m.Info, inst, "")
	if err != nil {
		t.Fatal(err)
	}
	layouts, err := m.TxLayouts()
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range layouts {
		// Build a descriptor with recognizable values per the static layout.
		desc := make([]byte, l.SizeBytes())
		want := map[string]uint64{}
		seed := uint64(0xA1)
		for _, f := range l.Fields {
			if f.WidthBits > 64 {
				continue
			}
			v := seed
			if f.WidthBits < 64 {
				v &= (1 << f.WidthBits) - 1
			}
			writeBits(desc, f.OffsetBits, f.WidthBits, v)
			want[f.Name] = v
			seed = seed*31 + 7
		}
		// Context selects this layout.
		ctx := sema.MapEnv{}
		for _, c := range l.Constraints {
			if c.Equal {
				ctx[c.Var] = c.Val
			}
		}
		res, err := p.Run(desc, ctx)
		if err != nil {
			t.Fatalf("layout %dB: %v", l.SizeBytes(), err)
		}
		if !res.Accepted {
			t.Fatalf("layout %dB rejected: %v", l.SizeBytes(), res.States)
		}
		for name, v := range want {
			if res.Values[name] != v {
				t.Errorf("layout %dB: %s = %#x, want %#x", l.SizeBytes(), name, res.Values[name], v)
			}
		}
		if res.BitsConsumed != l.SizeBits() {
			t.Errorf("layout %dB: consumed %d bits, static %d", l.SizeBytes(), res.BitsConsumed, l.SizeBits())
		}
	}
}

func writeBits(b []byte, off, w int, v uint64) {
	// Big-endian write matching bitfield.Write semantics.
	for i := 0; i < w; i++ {
		bit := byte(v>>uint(w-1-i)) & 1
		pos := off + i
		mask := byte(1) << (7 - pos%8)
		if bit == 1 {
			b[pos/8] |= mask
		} else {
			b[pos/8] &^= mask
		}
	}
}

func TestStepGuard(t *testing.T) {
	prog, err := parser.Parse("loop.p4", `
header h_t { bit<8> v; }
struct d_t { h_t h; }
struct c_t { bit<1> r; }
@bind("D","d_t") @bind("C","c_t")
parser P<C, D>(desc_in din, in C ctx, out D d) {
    state start { transition spin; }
    state spin  { transition spin2; }
    state spin2 { transition spin; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := info.BindParser(prog.Parser("P"), nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(info, inst, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(make([]byte, 8), nil); err == nil {
		t.Error("zero-extract loop must hit the step guard")
	}
}

func TestSelectOnExtractedField(t *testing.T) {
	// TLV-style parsing: the select key is a just-extracted field.
	prog, err := parser.Parse("tlv.p4", `
header tag_t { bit<8> kind; }
header a_t { bit<16> x; }
header b_t { bit<32> y; }
struct d_t { tag_t tag; a_t a; b_t b; }
struct c_t { bit<1> r; }
@bind("D","d_t") @bind("C","c_t")
parser P<C, D>(desc_in din, in C ctx, out D d) {
    state start {
        din.extract(d.tag);
        transition select(d.tag.kind) {
            1: pa;
            2: pb;
            default: reject;
        }
    }
    state pa { din.extract(d.a); transition accept; }
    state pb { din.extract(d.b); transition accept; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := info.BindParser(prog.Parser("P"), nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(info, inst, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run([]byte{0x01, 0xAB, 0xCD}, nil)
	if err != nil || !res.Accepted {
		t.Fatalf("kind=1: %v %v", res, err)
	}
	if res.Values["d.a.x"] != 0xABCD {
		t.Errorf("a.x = %#x", res.Values["d.a.x"])
	}
	res, err = p.Run([]byte{0x02, 0xDE, 0xAD, 0xBE, 0xEF}, nil)
	if err != nil || !res.Accepted || res.Values["d.b.y"] != 0xDEADBEEF {
		t.Fatalf("kind=2: %v %v", res, err)
	}
	res, err = p.Run([]byte{0x09}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Error("unknown kind should reject")
	}
	// qdma-style context selects still work via the ctx env.
	if _, err := p.Run(nil, nil); err == nil {
		t.Error("empty stream must error on first extract")
	}
}
