// Package interp executes P4 parsers over concrete byte streams: the dynamic
// counterpart of the static path analysis in internal/core. The same bound
// parser instance that the compiler analyzes (a NIC's DescParser, or a
// PNA-style packet parser) runs here against real descriptor or packet
// bytes, extracting header fields and following select transitions — so the
// static layouts and the dynamic behaviour can be cross-validated.
package interp

import (
	"fmt"

	"opendesc/internal/bitfield"
	"opendesc/internal/p4/ast"
	"opendesc/internal/p4/sema"
)

// Result is the outcome of one parser execution.
type Result struct {
	// Accepted reports whether the walk reached the accept state.
	Accepted bool
	// Values holds every extracted field (≤64 bits) by qualified name,
	// e.g. "desc_hdr.base.addr" or "hdr.ipv4.src_addr".
	Values map[string]uint64
	// ValidHeaders lists the composite prefixes that were extracted, e.g.
	// "hdr.vlan" — the isValid() set.
	ValidHeaders map[string]bool
	// BitsConsumed counts the stream bits consumed by extracts.
	BitsConsumed int
	// States is the visited state sequence.
	States []string
}

// Lookup implements sema.Env over the extracted values, so select
// expressions can reference previously extracted fields.
func (r *Result) Lookup(path string) (sema.Value, bool) {
	v, ok := r.Values[path]
	if !ok {
		return sema.Value{}, false
	}
	return sema.UintValue(v, 64), true
}

// Parser executes a bound P4 parser instance.
type Parser struct {
	info    *sema.Info
	inst    *sema.Instance
	decl    *ast.ParserDecl
	inParam string
	// maxSteps bounds the state walk (loops consume stream bits, but a
	// zero-extract loop would otherwise spin).
	maxSteps int
}

// New builds an interpreter for a bound parser instance. inParam names the
// input stream parameter; when empty, the first extern-typed parameter
// (desc_in / packet_in) is used.
func New(info *sema.Info, inst *sema.Instance, inParam string) (*Parser, error) {
	if inst.Parser == nil {
		return nil, fmt.Errorf("interp: instance is not a parser")
	}
	if inParam == "" {
		for _, p := range inst.Params {
			if et, ok := p.Type.(*sema.ExternType); ok && (et.Name == "desc_in" || et.Name == "packet_in") {
				inParam = p.Name
				break
			}
		}
	}
	if inParam == "" {
		return nil, fmt.Errorf("interp: parser %s has no input stream parameter", inst.Parser.Name)
	}
	if inst.Parser.State("start") == nil {
		return nil, fmt.Errorf("interp: parser %s has no start state", inst.Parser.Name)
	}
	return &Parser{info: info, inst: inst, decl: inst.Parser, inParam: inParam, maxSteps: 256}, nil
}

// layered environment: extracted values shadow the external context.
type env struct {
	res *Result
	ctx sema.Env
}

func (e env) Lookup(path string) (sema.Value, bool) {
	if v, ok := e.res.Lookup(path); ok {
		return v, true
	}
	if e.ctx != nil {
		return e.ctx.Lookup(path)
	}
	return sema.Value{}, false
}

// Run parses data under the given external context (per-queue registers and
// similar). A reject transition or running off the end of a state machine
// yields Accepted=false with the fields extracted so far; errors indicate a
// malformed description or truncated input.
func (p *Parser) Run(data []byte, ctx sema.Env) (*Result, error) {
	res := &Result{
		Values:       make(map[string]uint64),
		ValidHeaders: make(map[string]bool),
	}
	e := env{res: res, ctx: ctx}
	st := p.decl.State("start")
	for steps := 0; ; steps++ {
		if steps >= p.maxSteps {
			return nil, fmt.Errorf("interp: parser %s exceeded %d steps", p.decl.Name, p.maxSteps)
		}
		res.States = append(res.States, st.Name)
		for _, s := range st.Stmts {
			call, ok := s.(*ast.CallStmt)
			if !ok {
				continue
			}
			recv, name := call.Call.Callee()
			if name != "extract" {
				continue
			}
			if id, ok := ast.Unparen(recv).(*ast.Ident); !ok || id.Name != p.inParam {
				continue
			}
			if len(call.Call.Args) != 1 {
				return nil, fmt.Errorf("%s: extract takes one argument", call.Pos())
			}
			if err := p.extract(call.Call.Args[0], data, res); err != nil {
				return res, err
			}
		}
		next, done, err := p.transition(st, e)
		if err != nil {
			return res, err
		}
		if done {
			return res, nil
		}
		st = next
	}
}

// extract reads the target composite's fields from the stream.
func (p *Parser) extract(arg ast.Expr, data []byte, res *Result) error {
	prefix, ct, err := p.resolveTarget(arg)
	if err != nil {
		return err
	}
	if err := p.extractComposite(prefix, ct, data, res); err != nil {
		return err
	}
	res.ValidHeaders[prefix] = true
	return nil
}

func (p *Parser) extractComposite(prefix string, ct *sema.CompositeType, data []byte, res *Result) error {
	for _, f := range ct.Fields {
		name := prefix + "." + f.Name
		if nested, ok := f.Type.(*sema.CompositeType); ok {
			if err := p.extractComposite(name, nested, data, res); err != nil {
				return err
			}
			res.ValidHeaders[name] = true
			continue
		}
		w := f.Type.BitWidth()
		if w < 0 {
			return fmt.Errorf("interp: field %s has no fixed width", name)
		}
		if res.BitsConsumed+w > len(data)*8 {
			return fmt.Errorf("interp: stream exhausted extracting %s (need %d bits at offset %d of %d)",
				name, w, res.BitsConsumed, len(data)*8)
		}
		if w <= 64 {
			res.Values[name] = bitfield.Read(data, res.BitsConsumed, w)
		}
		res.BitsConsumed += w
	}
	return nil
}

// resolveTarget maps the extract argument to its composite type.
func (p *Parser) resolveTarget(arg ast.Expr) (string, *sema.CompositeType, error) {
	arg = ast.Unparen(arg)
	switch a := arg.(type) {
	case *ast.Ident:
		bp := p.inst.Param(a.Name)
		if bp == nil {
			return "", nil, fmt.Errorf("interp: unknown extract target %q", a.Name)
		}
		ct, ok := bp.Type.(*sema.CompositeType)
		if !ok {
			return "", nil, fmt.Errorf("interp: extract target %q is not a composite", a.Name)
		}
		return a.Name, ct, nil
	case *ast.MemberExpr:
		root, chain := splitChain(a)
		bp := p.inst.Param(root)
		if bp == nil {
			return "", nil, fmt.Errorf("interp: unknown extract root %q", root)
		}
		t := bp.Type
		prefix := root
		for _, fname := range chain {
			ct, ok := t.(*sema.CompositeType)
			if !ok {
				return "", nil, fmt.Errorf("interp: %s is not a composite", prefix)
			}
			fi := ct.Field(fname)
			if fi == nil {
				return "", nil, fmt.Errorf("interp: %s has no field %q", ct.Name, fname)
			}
			prefix += "." + fname
			t = fi.Type
		}
		ct, ok := t.(*sema.CompositeType)
		if !ok {
			return "", nil, fmt.Errorf("interp: extract target %s must be a header", prefix)
		}
		return prefix, ct, nil
	}
	return "", nil, fmt.Errorf("interp: unsupported extract argument %T", arg)
}

func splitChain(e *ast.MemberExpr) (string, []string) {
	var rev []string
	cur := ast.Expr(e)
	for {
		switch x := cur.(type) {
		case *ast.MemberExpr:
			rev = append(rev, x.Member)
			cur = x.X
		case *ast.Ident:
			out := make([]string, 0, len(rev))
			for i := len(rev) - 1; i >= 0; i-- {
				out = append(out, rev[i])
			}
			return x.Name, out
		default:
			return "", nil
		}
	}
}

// transition evaluates the state's transition; done=true means accept or
// reject reached (Accepted already recorded in res via e.res).
func (p *Parser) transition(st *ast.ParserState, e env) (*ast.ParserState, bool, error) {
	target := ""
	switch tr := st.Transition.(type) {
	case nil:
		target = "reject"
	case *ast.DirectTransition:
		target = tr.Target
	case *ast.SelectTransition:
		t, err := p.selectTarget(tr, e)
		if err != nil {
			return nil, false, err
		}
		target = t
	}
	switch target {
	case "accept":
		e.res.Accepted = true
		return nil, true, nil
	case "reject":
		e.res.Accepted = false
		return nil, true, nil
	}
	next := p.decl.State(target)
	if next == nil {
		return nil, false, fmt.Errorf("interp: transition to unknown state %q", target)
	}
	return next, false, nil
}

func (p *Parser) selectTarget(tr *ast.SelectTransition, e env) (string, error) {
	keys := make([]sema.Value, len(tr.Exprs))
	for i, x := range tr.Exprs {
		v, err := p.info.Eval(x, e)
		if err != nil {
			return "", fmt.Errorf("interp: select key: %w", err)
		}
		keys[i] = v
	}
	var def string
	for _, c := range tr.Cases {
		if c.IsDefault {
			def = c.Target
			continue
		}
		if len(c.Keys) != len(keys) {
			return "", fmt.Errorf("interp: select case arity %d vs %d keys", len(c.Keys), len(keys))
		}
		match := true
		for i, k := range c.Keys {
			ok, err := p.matchKey(k, keys[i], e)
			if err != nil {
				return "", err
			}
			if !ok {
				match = false
				break
			}
		}
		if match {
			return c.Target, nil
		}
	}
	if def != "" {
		return def, nil
	}
	return "reject", nil
}

func (p *Parser) matchKey(k ast.Expr, v sema.Value, e env) (bool, error) {
	switch key := ast.Unparen(k).(type) {
	case *ast.DontCare:
		return true, nil
	case *ast.RangeExpr:
		lo, err := p.info.Eval(key.Lo, e)
		if err != nil {
			return false, err
		}
		hi, err := p.info.Eval(key.Hi, e)
		if err != nil {
			return false, err
		}
		return v.Uint >= lo.Uint && v.Uint <= hi.Uint, nil
	default:
		kv, err := p.info.Eval(k, e)
		if err != nil {
			return false, fmt.Errorf("interp: select case key: %w", err)
		}
		return kv.Equal(v), nil
	}
}
