package semantics_test

// Property tests for the Toeplitz RSS hash that steers the multi-tenant
// serving plane. They live with the semantics registry (the contract layer
// that defines what "rss" means) and exercise the softnic implementation:
//
//  1. distribution — over a seeded corpus of random 5-tuples, queue
//     assignment hash%Q is near-uniform (no shard starves);
//  2. symmetry — under SymmetricToeplitzKey, flipping src/dst addresses and
//     ports never changes the hash (both directions of a connection land on
//     the same core);
//  3. the Microsoft reference key is demonstrably NOT symmetric (negative
//     control: the symmetric property is a property of the key, not of
//     Toeplitz itself).

import (
	"testing"

	"opendesc/internal/pkt"
	"opendesc/internal/softnic"
)

// tupleRNG is splitmix64 — the corpus must be identical on every run and
// every Go release.
type tupleRNG struct{ s uint64 }

func (r *tupleRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// corpus decodes n random-5-tuple UDP packets into pkt.Info values.
func corpus(t *testing.T, n int, seed uint64) []pkt.Info {
	t.Helper()
	rng := &tupleRNG{s: seed}
	infos := make([]pkt.Info, n)
	for i := range infos {
		v := rng.next()
		w := rng.next()
		p := pkt.NewBuilder().
			WithIPv4(
				[4]byte{10, byte(v >> 16), byte(v >> 8), byte(v)},
				[4]byte{172, 16, byte(v >> 32), byte(v >> 24)},
			).
			WithUDP(uint16(1024+w%60000), uint16(1024+(w>>16)%60000)).
			Build()
		if err := pkt.Decode(p, &infos[i]); err != nil {
			t.Fatalf("corpus packet %d: %v", i, err)
		}
	}
	return infos
}

// flip returns the reverse direction of a 5-tuple: src/dst addresses and
// ports swapped.
func flip(in pkt.Info) pkt.Info {
	out := in
	out.SrcIP, out.DstIP = in.DstIP, in.SrcIP
	out.SrcPort, out.DstPort = in.DstPort, in.SrcPort
	return out
}

// TestRSSQueueDistribution: hash%Q over the corpus must give every queue
// close to its fair share, for both keys and representative queue counts.
func TestRSSQueueDistribution(t *testing.T) {
	const n = 4096
	infos := corpus(t, n, 11)
	for _, key := range [][]byte{softnic.DefaultToeplitzKey[:], softnic.SymmetricToeplitzKey[:]} {
		for _, queues := range []int{2, 4, 8} {
			counts := make([]int, queues)
			for i := range infos {
				counts[int(softnic.RSSKey(key, &infos[i]))%queues]++
			}
			expect := n / queues
			// ±30% of fair share is > 6σ for the binomial at these sizes:
			// a biased hash fails hard, a uniform one never trips.
			lo, hi := expect*7/10, expect*13/10
			for q, c := range counts {
				if c < lo || c > hi {
					t.Errorf("key %x…, %d queues: queue %d got %d of %d (fair %d)",
						key[0], queues, q, c, n, expect)
				}
			}
		}
	}
}

// TestSymmetricKeyFlipAgreement: the repeating-16-bit key hashes both flow
// directions identically — every 5-tuple field moves by a whole multiple of
// the key's 16-bit period when src and dst swap.
func TestSymmetricKeyFlipAgreement(t *testing.T) {
	infos := corpus(t, 2048, 23)
	for i := range infos {
		fwd := softnic.RSSKey(softnic.SymmetricToeplitzKey[:], &infos[i])
		rev := flip(infos[i])
		if bwd := softnic.RSSKey(softnic.SymmetricToeplitzKey[:], &rev); fwd != bwd {
			t.Fatalf("tuple %d: forward %#x != reverse %#x under the symmetric key", i, fwd, bwd)
		}
	}
}

// TestDefaultKeyIsNotSymmetric: the Microsoft reference key must disagree
// on flipped tuples — if this ever passes symmetrically, the negative
// control (and the reason SymmetricToeplitzKey exists) is broken.
func TestDefaultKeyIsNotSymmetric(t *testing.T) {
	infos := corpus(t, 256, 31)
	asymmetric := 0
	for i := range infos {
		fwd := softnic.RSSKey(softnic.DefaultToeplitzKey[:], &infos[i])
		rev := flip(infos[i])
		if fwd != softnic.RSSKey(softnic.DefaultToeplitzKey[:], &rev) {
			asymmetric++
		}
	}
	if asymmetric == 0 {
		t.Fatal("the Microsoft reference key behaved symmetrically over the whole corpus")
	}
}

// TestRSSKeyMatchesRSS: RSSKey under the default key is exactly RSS.
func TestRSSKeyMatchesRSS(t *testing.T) {
	infos := corpus(t, 128, 41)
	for i := range infos {
		if softnic.RSS(&infos[i]) != softnic.RSSKey(softnic.DefaultToeplitzKey[:], &infos[i]) {
			t.Fatalf("tuple %d: RSS != RSSKey(default)", i)
		}
	}
}
