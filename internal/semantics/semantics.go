// Package semantics defines the OpenDesc semantic universe Σ: the canonical
// names of metadata items that hosts and NICs exchange, the software
// reference implementation of each item (the "SoftNIC" fallback the paper
// delegates missing features to), and the per-semantic software cost model
// w: Σ → ℝ>0 ∪ {∞} used by the compiler's optimization (Eq. 1).
package semantics

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Name identifies a semantic (an element of Σ).
type Name string

// Canonical semantics. Applications and NIC descriptions may register more
// at runtime (the paper's "evolvable" property).
const (
	RSS          Name = "rss"          // receive-side-scaling hash over the 5-tuple
	IPChecksum   Name = "ip_checksum"  // IPv4 header checksum (verified/computed)
	L4Checksum   Name = "l4_checksum"  // TCP/UDP checksum (verified/computed)
	VLAN         Name = "vlan"         // stripped VLAN TCI
	Timestamp    Name = "timestamp"    // RX hardware timestamp
	PktLen       Name = "pkt_len"      // wire length of the packet
	PType        Name = "ptype"        // parsed packet type (L2/L3/L4 code)
	FlowID       Name = "flow_id"      // exact-match flow identifier
	IPID         Name = "ip_id"        // IPv4 identification field
	Mark         Name = "mark"         // match-action rule mark/tag
	QueueID      Name = "queue_id"     // receive queue index
	LROSegs      Name = "lro_segs"     // coalesced segment count (LRO)
	InnerCsum    Name = "inner_csum"   // inner (tunnel) checksum status
	TunnelID     Name = "tunnel_id"    // VXLAN/GENEVE VNI
	KVKey        Name = "kv_key"       // key of a key-value-store request (FlexNIC-style)
	CryptoCtx    Name = "crypto_ctx"   // cryptographic context id (AES offload)
	SegCnt       Name = "seg_cnt"      // scatter/gather segment count
	ErrorFlags   Name = "error_flags"  // RX error bits
	ChecksumAny  Name = "csum_level"   // checksum validation depth
	PayloadHash  Name = "payload_hash" // hash over payload bytes (RegEx/offload aides)
	DecapFlag    Name = "decap"        // tunnel decapsulated indicator
	RXDropHint   Name = "drop_hint"    // early-drop classification hint
	L4Port       Name = "l4_dst_port"  // parsed L4 destination port
	ParserDepth  Name = "parser_depth" // how deep the on-NIC parser got
	MetaRawStart Name = "raw_meta"     // raw programmable-pipeline metadata blob
)

// Infinite is the cost of a semantic that software cannot emulate
// (w(s) = ∞ in the paper's formulation).
var Infinite = math.Inf(1)

// Descriptor describes one semantic: its identity, default width, and
// software-emulation properties.
type Descriptor struct {
	Name Name
	// Doc is a one-line description.
	Doc string
	// DefaultBits is the canonical field width used when an intent does not
	// specify one.
	DefaultBits int
	// SoftCost is the default software-emulation cost w(s) in abstract
	// cost units (calibrated ≈ ns/packet on the reference machine). Use
	// Infinite when no software fallback exists.
	SoftCost float64
	// RequiresPayload reports whether the software fallback must touch
	// packet payload bytes (vs header-only), which matters for cost
	// scaling with packet size.
	RequiresPayload bool
}

// Registry maps semantic names to descriptors. The zero value is empty; use
// NewRegistry for one pre-populated with the canonical universe.
type Registry struct {
	mu     sync.RWMutex
	byName map[Name]*Descriptor
}

// NewRegistry returns a registry populated with the canonical semantics.
func NewRegistry() *Registry {
	r := &Registry{byName: make(map[Name]*Descriptor)}
	for _, d := range canonical {
		dd := d
		r.byName[d.Name] = &dd
	}
	return r
}

// canonical is the built-in universe. Costs are the static model used when
// no measured calibration is supplied; see package softnic for measurement.
var canonical = []Descriptor{
	{Name: RSS, Doc: "Toeplitz RSS hash over the 5-tuple", DefaultBits: 32, SoftCost: 18},
	{Name: IPChecksum, Doc: "IPv4 header checksum verification", DefaultBits: 16, SoftCost: 26},
	{Name: L4Checksum, Doc: "TCP/UDP checksum verification", DefaultBits: 16, SoftCost: 95, RequiresPayload: true},
	{Name: VLAN, Doc: "stripped 802.1Q TCI", DefaultBits: 16, SoftCost: 4},
	{Name: Timestamp, Doc: "RX hardware timestamp", DefaultBits: 64, SoftCost: Infinite},
	{Name: PktLen, Doc: "wire length", DefaultBits: 16, SoftCost: 1},
	{Name: PType, Doc: "parsed packet type code", DefaultBits: 8, SoftCost: 9},
	{Name: FlowID, Doc: "exact-match flow identifier", DefaultBits: 32, SoftCost: 35},
	{Name: IPID, Doc: "IPv4 identification field", DefaultBits: 16, SoftCost: 3},
	{Name: Mark, Doc: "match-action mark", DefaultBits: 32, SoftCost: Infinite},
	{Name: QueueID, Doc: "receive queue index", DefaultBits: 16, SoftCost: 1},
	{Name: LROSegs, Doc: "coalesced segment count", DefaultBits: 8, SoftCost: Infinite},
	{Name: InnerCsum, Doc: "inner checksum status", DefaultBits: 8, SoftCost: 120, RequiresPayload: true},
	{Name: TunnelID, Doc: "tunnel VNI", DefaultBits: 32, SoftCost: 14},
	{Name: KVKey, Doc: "key-value request key digest", DefaultBits: 64, SoftCost: 150, RequiresPayload: true},
	{Name: CryptoCtx, Doc: "crypto context id", DefaultBits: 32, SoftCost: Infinite},
	{Name: SegCnt, Doc: "scatter/gather segment count", DefaultBits: 8, SoftCost: 2},
	{Name: ErrorFlags, Doc: "RX error bits", DefaultBits: 8, SoftCost: 2},
	{Name: ChecksumAny, Doc: "checksum validation depth", DefaultBits: 2, SoftCost: 30},
	{Name: PayloadHash, Doc: "payload hash", DefaultBits: 32, SoftCost: 210, RequiresPayload: true},
	{Name: DecapFlag, Doc: "decapsulation indicator", DefaultBits: 1, SoftCost: 6},
	{Name: RXDropHint, Doc: "early-drop hint", DefaultBits: 1, SoftCost: Infinite},
	{Name: L4Port, Doc: "L4 destination port", DefaultBits: 16, SoftCost: 7},
	{Name: ParserDepth, Doc: "on-NIC parser depth", DefaultBits: 4, SoftCost: 9},
	{Name: MetaRawStart, Doc: "raw pipeline metadata blob", DefaultBits: 64, SoftCost: Infinite},
}

// Lookup returns the descriptor for a semantic, or nil.
func (r *Registry) Lookup(n Name) *Descriptor {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[n]
}

// Register adds or replaces a semantic descriptor. This is the paper's
// extension point: "The application can define new @semantic annotations
// that are tied ... to a new feature."
func (r *Registry) Register(d Descriptor) error {
	if d.Name == "" {
		return fmt.Errorf("semantic name must not be empty")
	}
	if d.DefaultBits <= 0 || d.DefaultBits > 4096 {
		return fmt.Errorf("semantic %q: default width %d out of range", d.Name, d.DefaultBits)
	}
	if d.SoftCost < 0 {
		return fmt.Errorf("semantic %q: negative cost", d.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	dd := d
	r.byName[d.Name] = &dd
	return nil
}

// Names returns all registered semantic names, sorted.
func (r *Registry) Names() []Name {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Name, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of registered semantics.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}

// Default is the process-wide registry with the canonical universe.
var Default = NewRegistry()

// CostModel is the w: Σ → ℝ>0 ∪ {∞} function handed to the compiler. The
// default model reads SoftCost from a registry; measured models (package
// softnic) or per-application overrides can replace it.
type CostModel func(Name) float64

// RegistryCosts builds a CostModel from a registry; unknown semantics are
// infinitely expensive (software cannot emulate what it does not know).
func RegistryCosts(r *Registry) CostModel {
	return func(n Name) float64 {
		if d := r.Lookup(n); d != nil {
			return d.SoftCost
		}
		return Infinite
	}
}

// WithOverrides wraps a cost model with per-semantic overrides.
func (cm CostModel) WithOverrides(over map[Name]float64) CostModel {
	return func(n Name) float64 {
		if v, ok := over[n]; ok {
			return v
		}
		return cm(n)
	}
}

// Set is an ordered-insensitive collection of semantics.
type Set map[Name]struct{}

// NewSet builds a set from names.
func NewSet(names ...Name) Set {
	s := make(Set, len(names))
	for _, n := range names {
		s[n] = struct{}{}
	}
	return s
}

// Add inserts a name.
func (s Set) Add(n Name) { s[n] = struct{}{} }

// Has reports membership.
func (s Set) Has(n Name) bool {
	_, ok := s[n]
	return ok
}

// Union returns s ∪ o as a new set.
func (s Set) Union(o Set) Set {
	out := make(Set, len(s)+len(o))
	for n := range s {
		out[n] = struct{}{}
	}
	for n := range o {
		out[n] = struct{}{}
	}
	return out
}

// Minus returns s \ o as a new set.
func (s Set) Minus(o Set) Set {
	out := make(Set)
	for n := range s {
		if !o.Has(n) {
			out[n] = struct{}{}
		}
	}
	return out
}

// Intersect returns s ∩ o as a new set.
func (s Set) Intersect(o Set) Set {
	out := make(Set)
	for n := range s {
		if o.Has(n) {
			out[n] = struct{}{}
		}
	}
	return out
}

// Sorted returns the members in lexical order.
func (s Set) Sorted() []Name {
	out := make([]Name, 0, len(s))
	for n := range s {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set as {a, b, c}.
func (s Set) String() string {
	names := s.Sorted()
	out := "{"
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += string(n)
	}
	return out + "}"
}

// Equal reports set equality.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for n := range s {
		if !o.Has(n) {
			return false
		}
	}
	return true
}
