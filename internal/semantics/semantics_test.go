package semantics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestCanonicalRegistry(t *testing.T) {
	r := NewRegistry()
	if r.Len() < 20 {
		t.Errorf("canonical universe has %d semantics", r.Len())
	}
	d := r.Lookup(RSS)
	if d == nil || d.DefaultBits != 32 || d.SoftCost <= 0 {
		t.Errorf("rss descriptor = %+v", d)
	}
	if r.Lookup("nope") != nil {
		t.Error("unknown lookup should be nil")
	}
}

func TestInemulableSemantics(t *testing.T) {
	r := NewRegistry()
	for _, n := range []Name{Timestamp, Mark, CryptoCtx, LROSegs} {
		if !math.IsInf(r.Lookup(n).SoftCost, 1) {
			t.Errorf("%s should have infinite software cost", n)
		}
	}
}

func TestRegisterNewSemantic(t *testing.T) {
	r := NewRegistry()
	err := r.Register(Descriptor{
		Name: "my_accel_result", Doc: "custom accelerator",
		DefaultBits: 48, SoftCost: 250,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := r.Lookup("my_accel_result"); d == nil || d.DefaultBits != 48 {
		t.Errorf("registered = %+v", d)
	}
	// Evolvability: replacing an existing one is allowed.
	if err := r.Register(Descriptor{Name: RSS, DefaultBits: 32, SoftCost: 5}); err != nil {
		t.Fatal(err)
	}
	if r.Lookup(RSS).SoftCost != 5 {
		t.Error("replacement not applied")
	}
}

func TestRegisterValidation(t *testing.T) {
	r := NewRegistry()
	for _, d := range []Descriptor{
		{Name: "", DefaultBits: 8},
		{Name: "x", DefaultBits: 0},
		{Name: "x", DefaultBits: 5000},
		{Name: "x", DefaultBits: 8, SoftCost: -1},
	} {
		if err := r.Register(d); err == nil {
			t.Errorf("Register(%+v) should fail", d)
		}
	}
}

func TestRegistryCostsUnknownIsInfinite(t *testing.T) {
	cm := RegistryCosts(NewRegistry())
	if !math.IsInf(cm("never_heard_of_it"), 1) {
		t.Error("unknown semantics must cost ∞")
	}
	if cm(VLAN) != 4 {
		t.Errorf("vlan cost = %v", cm(VLAN))
	}
}

func TestCostOverrides(t *testing.T) {
	cm := RegistryCosts(NewRegistry()).WithOverrides(map[Name]float64{RSS: 99})
	if cm(RSS) != 99 || cm(VLAN) != 4 {
		t.Errorf("override model: rss=%v vlan=%v", cm(RSS), cm(VLAN))
	}
}

func TestSetOperations(t *testing.T) {
	a := NewSet(RSS, VLAN, Timestamp)
	b := NewSet(VLAN, PktLen)
	if !a.Has(RSS) || a.Has(PktLen) {
		t.Error("membership broken")
	}
	if u := a.Union(b); len(u) != 4 {
		t.Errorf("union = %v", u)
	}
	if m := a.Minus(b); len(m) != 2 || m.Has(VLAN) {
		t.Errorf("minus = %v", m)
	}
	if i := a.Intersect(b); len(i) != 1 || !i.Has(VLAN) {
		t.Errorf("intersect = %v", i)
	}
	if a.Equal(b) || !a.Equal(NewSet(Timestamp, VLAN, RSS)) {
		t.Error("equality broken")
	}
	if s := NewSet(VLAN, RSS).String(); s != "{rss, vlan}" {
		t.Errorf("string = %q", s)
	}
}

func TestSetSortedDeterministic(t *testing.T) {
	s := NewSet(VLAN, RSS, PktLen, Timestamp)
	first := s.Sorted()
	for i := 0; i < 10; i++ {
		again := s.Sorted()
		for j := range first {
			if first[j] != again[j] {
				t.Fatal("sorted order unstable")
			}
		}
	}
}

// Property: set algebra laws hold for arbitrary name sets.
func TestQuickSetLaws(t *testing.T) {
	mk := func(xs []uint8) Set {
		s := make(Set)
		for _, x := range xs {
			s.Add(Name(rune('a' + x%16)))
		}
		return s
	}
	f := func(xs, ys []uint8) bool {
		a, b := mk(xs), mk(ys)
		u := a.Union(b)
		// a ⊆ a∪b and b ⊆ a∪b.
		for n := range a {
			if !u.Has(n) {
				return false
			}
		}
		for n := range b {
			if !u.Has(n) {
				return false
			}
		}
		// (a\b) ∩ b = ∅ and (a\b) ∪ (a∩b) = a.
		d := a.Minus(b)
		if len(d.Intersect(b)) != 0 {
			return false
		}
		return d.Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if i%2 == 0 {
					r.Register(Descriptor{Name: Name(rune('a' + i)), DefaultBits: 8, SoftCost: 1})
				} else {
					r.Lookup(RSS)
					r.Names()
				}
			}
		}(i)
	}
	wg.Wait()
}
