package semantics

import "sync"

// The paper proposes that "each offload feature ... come with a reference P4
// implementation. If hardware lacks capability, OpenDesc can delegate to
// software ... For programmable NICs, missing features can therefore be
// pushed to the NIC using one of the numerous P4-to-device compilers."
//
// This file holds that reference-implementation library: per semantic, a P4
// control fragment computing the value into the pipeline metadata, plus a
// resource estimate used by offload planning (programmable NICs have
// constrained resources, §5 "Performance and programmable constraint").

// RefImpl is a reference P4 implementation of one semantic.
type RefImpl struct {
	Semantic Name
	// P4 is the control fragment computing the semantic into meta.<field>.
	P4 string
	// Stages is the estimated match-action stage usage when compiled to a
	// pipeline.
	Stages int
	// NeedsPayload marks features that must inspect payload bytes, which
	// RMT-style pipelines cannot do (only externs/accelerators can).
	NeedsPayload bool
}

var (
	refMu   sync.RWMutex
	refImpl = map[Name]RefImpl{}
)

// RegisterRef adds or replaces a reference implementation.
func RegisterRef(r RefImpl) {
	refMu.Lock()
	defer refMu.Unlock()
	refImpl[r.Semantic] = r
}

// Ref returns the reference implementation for a semantic, if any.
func Ref(n Name) (RefImpl, bool) {
	refMu.RLock()
	defer refMu.RUnlock()
	r, ok := refImpl[n]
	return r, ok
}

// RefSemantics lists all semantics with reference implementations.
func RefSemantics() []Name {
	refMu.RLock()
	defer refMu.RUnlock()
	out := make([]Name, 0, len(refImpl))
	for n := range refImpl {
		out = append(out, n)
	}
	return out
}

func init() {
	for _, r := range []RefImpl{
		{
			Semantic: RSS,
			Stages:   2,
			P4: `control ref_rss(in headers_t hdr, inout pipe_meta_t meta) {
    apply {
        // Toeplitz over the 5-tuple via the hash extern.
        meta.rss = toeplitz_hash(hdr.ipv4.src_addr, hdr.ipv4.dst_addr,
                                 hdr.l4.src_port, hdr.l4.dst_port);
    }
}`,
		},
		{
			Semantic: IPChecksum,
			Stages:   1,
			P4: `control ref_ip_checksum(in headers_t hdr, inout pipe_meta_t meta) {
    apply {
        meta.ip_checksum = csum16(hdr.ipv4);
    }
}`,
		},
		{
			Semantic: L4Checksum,
			Stages:   1,
			// L4 checksums cover the payload: needs the checksum engine, not
			// the match-action stages, but remains pipeline-offloadable.
			P4: `control ref_l4_checksum(in headers_t hdr, inout pipe_meta_t meta) {
    apply {
        meta.l4_checksum = csum16_payload(hdr.l4);
    }
}`,
		},
		{
			Semantic: VLAN,
			Stages:   1,
			P4: `control ref_vlan(in headers_t hdr, inout pipe_meta_t meta) {
    apply {
        if (hdr.vlan.isValid()) { meta.vlan = hdr.vlan.tci; }
    }
}`,
		},
		{
			Semantic: PType,
			Stages:   1,
			P4: `control ref_ptype(in headers_t hdr, inout pipe_meta_t meta) {
    apply {
        meta.ptype = (bit<8>) hdr.l3_kind ++ (bit<4>) hdr.l4_kind;
    }
}`,
		},
		{
			Semantic: FlowID,
			Stages:   3,
			P4: `control ref_flow_id(in headers_t hdr, inout pipe_meta_t meta) {
    apply {
        // Exact-match flow table with learn-on-miss.
        meta.flow_id = flow_table_lookup(hdr.ipv4.src_addr, hdr.ipv4.dst_addr,
                                         hdr.l4.src_port, hdr.l4.dst_port,
                                         hdr.ipv4.protocol);
    }
}`,
		},
		{
			Semantic: TunnelID,
			Stages:   1,
			P4: `control ref_tunnel_id(in headers_t hdr, inout pipe_meta_t meta) {
    apply {
        if (hdr.vxlan.isValid()) { meta.tunnel_id = hdr.vxlan.vni; }
    }
}`,
		},
		{
			Semantic:     KVKey,
			Stages:       4,
			NeedsPayload: true,
			P4: `control ref_kv_key(in headers_t hdr, inout pipe_meta_t meta) {
    apply {
        // Payload-inspecting feature: requires a parser extern that walks
        // the request line ("get <key>") and digests the key bytes.
        meta.kv_key = kv_key_digest(hdr.payload);
    }
}`,
		},
		{
			Semantic:     PayloadHash,
			Stages:       2,
			NeedsPayload: true,
			P4: `control ref_payload_hash(in headers_t hdr, inout pipe_meta_t meta) {
    apply {
        meta.payload_hash = crc32_payload(hdr.payload);
    }
}`,
		},
		{
			Semantic: IPID,
			Stages:   1,
			P4: `control ref_ip_id(in headers_t hdr, inout pipe_meta_t meta) {
    apply {
        meta.ip_id = hdr.ipv4.identification;
    }
}`,
		},
	} {
		RegisterRef(r)
	}
}
