package vclock

import (
	"sync"
	"testing"
)

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual(100)
	if v.Now() != 100 {
		t.Fatalf("start = %d, want 100", v.Now())
	}
	v.Advance(50)
	if v.Now() != 150 {
		t.Fatalf("after advance = %d, want 150", v.Now())
	}
	v.Set(7)
	if v.Now() != 7 {
		t.Fatalf("after set = %d, want 7", v.Now())
	}
}

func TestWallMonotone(t *testing.T) {
	w := Wall()
	a := w.Now()
	w.Advance(1 << 40) // must be a no-op, not a sleep
	b := w.Now()
	if b < a {
		t.Fatalf("wall clock went backwards: %d then %d", a, b)
	}
}

func TestOrDefaults(t *testing.T) {
	if Or(nil) != Wall() {
		t.Fatal("Or(nil) must return the shared wall clock")
	}
	v := NewVirtual(0)
	if Or(v) != Clock(v) {
		t.Fatal("Or must pass a non-nil clock through")
	}
}

// TestVirtualConcurrentReaders: Now must be race-free against Advance (the
// stats scraper reads while the scheduler advances).
func TestVirtualConcurrentReaders(t *testing.T) {
	v := NewVirtual(0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = v.Now()
			}
		}
	}()
	for i := 0; i < 1000; i++ {
		v.Advance(3)
	}
	close(stop)
	wg.Wait()
	if v.Now() != 3000 {
		t.Fatalf("virtual time = %d, want 3000", v.Now())
	}
}
