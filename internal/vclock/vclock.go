// Package vclock is the clock abstraction behind deterministic simulation:
// every time-dependent decision in the hot path (watchdog backoff stamps,
// switchover latency and hysteresis windows, simulated device timestamps)
// reads an injected Clock instead of the wall, so a chaos run can replay the
// exact same timeline from a seed. Two implementations are provided: Wall
// (nanoseconds since process start, the production default) and Virtual (a
// manually advanced counter, the simulation testing clock).
//
// The repo-wide rule — enforced by the wall-clock lint test in
// internal/chaos — is that hot-path packages never call time.Now or
// time.Sleep directly; they go through a Clock. Measurement-only packages
// (internal/obs, internal/bench, the CLIs) keep their wall clocks.
package vclock

import (
	"sync/atomic"
	"time"
)

// Clock is a monotonic nanosecond timeline. Implementations must make Now
// safe for concurrent readers; Advance is owned by the timeline's driver
// (the simulation scheduler, or nobody for a wall clock).
type Clock interface {
	// Now returns nanoseconds elapsed on this timeline.
	Now() uint64
	// Advance moves the timeline forward by ns. On a wall clock this is a
	// no-op: real time passes on its own, and deterministic code must never
	// block waiting for it.
	Advance(ns uint64)
}

// wall is the production clock: nanoseconds since an epoch pinned at
// construction (process start for the shared Wall() instance).
type wall struct{ epoch time.Time }

func (w *wall) Now() uint64      { return uint64(time.Since(w.epoch)) }
func (w *wall) Advance(_ uint64) {}

var processWall Clock = &wall{epoch: time.Now()}

// Wall returns the shared wall clock (nanoseconds since process start).
// Components that are handed a nil Clock default to this.
func Wall() Clock { return processWall }

// Virtual is a deterministic, manually advanced clock. The zero value starts
// at time 0. Now is safe from any goroutine; Advance is meant to be called
// from the single scheduler goroutine that owns the timeline.
type Virtual struct {
	ns atomic.Uint64
}

// NewVirtual returns a virtual clock starting at start nanoseconds.
func NewVirtual(start uint64) *Virtual {
	v := &Virtual{}
	v.ns.Store(start)
	return v
}

// Now returns the current virtual time.
func (v *Virtual) Now() uint64 { return v.ns.Load() }

// Advance moves virtual time forward by ns.
func (v *Virtual) Advance(ns uint64) { v.ns.Add(ns) }

// Set pins the virtual time to an absolute value (replay bookkeeping).
func (v *Virtual) Set(ns uint64) { v.ns.Store(ns) }

// Or returns c when non-nil and the shared wall clock otherwise — the
// one-line default used by every option struct that embeds a Clock.
func Or(c Clock) Clock {
	if c == nil {
		return processWall
	}
	return c
}
