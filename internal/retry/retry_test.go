package retry

import (
	"errors"
	"testing"

	"opendesc/internal/vclock"
)

// TestDefaultAttemptCount pins the zero-value policy to the legacy ×4
// ApplyConfig loops it replaced in evolve, tenant, and harden: exactly 4
// attempts, one OnError per failure, last error returned verbatim.
func TestDefaultAttemptCount(t *testing.T) {
	sentinel := errors.New("nak")
	calls, failures := 0, 0
	err := Policy{OnError: func(attempt int, err error) {
		failures++
		if attempt != failures {
			t.Fatalf("OnError attempt = %d, want %d", attempt, failures)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("OnError err = %v, want sentinel", err)
		}
	}}.Do(func() error {
		calls++
		return sentinel
	})
	if calls != DefaultAttempts || failures != DefaultAttempts {
		t.Fatalf("calls = %d, failures = %d, want %d each (legacy ×4 parity)",
			calls, failures, DefaultAttempts)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("Do returned %v, want the last error unwrapped", err)
	}
}

func TestDoStopsOnSuccess(t *testing.T) {
	calls := 0
	err := Policy{}.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d, want success on attempt 3", err, calls)
	}
}

// TestBackoffSequence pins the deterministic schedule to the harden
// watchdog's historical one: 1, 2, 4, …, capped, repeating at the cap.
func TestBackoffSequence(t *testing.T) {
	b := Policy{BaseDelay: 1, MaxDelay: 8}.NewBackoff()
	want := []uint64{1, 2, 4, 8, 8, 8}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("delay %d = %d, want %d", i, got, w)
		}
	}
	b.Reset()
	if got := b.Next(); got != 1 {
		t.Fatalf("post-reset delay = %d, want 1", got)
	}
}

// TestJitterDeterministicAndBounded: same seed ⇒ same delays; every
// jittered delay stays within [d/2, d] of the exact schedule.
func TestJitterDeterministicAndBounded(t *testing.T) {
	p := Policy{BaseDelay: 16, MaxDelay: 1024, JitterSeed: 7}
	a, b := p.NewBackoff(), p.NewBackoff()
	exact := Policy{BaseDelay: 16, MaxDelay: 1024}.NewBackoff()
	for i := 0; i < 12; i++ {
		da, db, de := a.Next(), b.Next(), exact.Next()
		if da != db {
			t.Fatalf("delay %d: seeds diverged (%d vs %d)", i, da, db)
		}
		if da < de/2 || da > de {
			t.Fatalf("delay %d = %d outside [%d, %d]", i, da, de/2, de)
		}
	}
	other := Policy{BaseDelay: 16, MaxDelay: 1024, JitterSeed: 8}.NewBackoff()
	same := true
	for i := 0; i < 12; i++ {
		if a.Next() != other.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

// TestBudgetDeadline: the delay budget cuts the schedule short and the
// Sleep hook never receives a delay past the deadline.
func TestBudgetDeadline(t *testing.T) {
	var slept uint64
	calls := 0
	err := Policy{
		Attempts:  10,
		BaseDelay: 4,
		MaxDelay:  64,
		Budget:    20, // delays 4+8 fit; +16 would exceed
		Sleep:     func(d uint64) { slept += d },
	}.Do(func() error {
		calls++
		return errors.New("down")
	})
	if err == nil {
		t.Fatal("want the last error after the budget ran out")
	}
	if calls != 3 || slept != 12 {
		t.Fatalf("calls = %d, slept = %d, want 3 calls and 12 units slept", calls, slept)
	}
}

// TestBudgetChargesClockTime: with a Clock, virtual time spent inside the
// attempts counts against the budget too (an RPC deadline, not merely a
// backoff cap).
func TestBudgetChargesClockTime(t *testing.T) {
	clk := vclock.NewVirtual(0)
	calls := 0
	err := Policy{
		Attempts:  10,
		BaseDelay: 1,
		Budget:    100,
		Clock:     clk,
	}.Do(func() error {
		calls++
		clk.Advance(60) // each "RPC" burns 60 of the 100 budget
		return errors.New("timeout")
	})
	if err == nil || calls != 2 {
		t.Fatalf("calls = %d (err %v), want 2: the second attempt exhausts the deadline", calls, err)
	}
}

func TestSleepReceivesSchedule(t *testing.T) {
	var delays []uint64
	Policy{
		Attempts:  4,
		BaseDelay: 2,
		MaxDelay:  1024,
		Sleep:     func(d uint64) { delays = append(delays, d) },
	}.Do(func() error { return errors.New("x") })
	want := []uint64{2, 4, 8} // 3 backoffs between 4 attempts
	if len(delays) != len(want) {
		t.Fatalf("delays = %v, want %v", delays, want)
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delays = %v, want %v", delays, want)
		}
	}
}
