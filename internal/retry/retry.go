// Package retry is the repository's one bounded-retry discipline: a fixed
// attempt budget, exponential backoff with a cap, optional deterministic
// seeded jitter, and an optional time budget (deadline) measured on a
// vclock. Before this package, the same schedule was hand-rolled in three
// places (the evolve switchover apply, the tenant plane apply, and the
// harden watchdog); the fleet control plane (S25) adds a fourth caller, so
// the schedule now lives here once.
//
// Determinism contract: the package never reads the wall clock and never
// sleeps on its own. Delay side effects happen only through the caller's
// Sleep hook, and jitter comes from a splitmix64 stream seeded by the
// caller — same seed, same schedule. This keeps retries legal on the
// repo's hot paths (see the wall-clock lint in internal/chaos) and exactly
// reproducible under the chaos scheduler's virtual time.
package retry

import "opendesc/internal/vclock"

// DefaultAttempts is the repo-wide default attempt budget. It matches the
// legacy hardcoded ×4 ApplyConfig loops this package replaced, so adopting
// the shared policy is not a behavior change (a regression test pins this).
const DefaultAttempts = 4

const (
	// DefaultBaseDelay/DefaultMaxDelay bound the backoff schedule
	// 1, 2, 4, …, 1024 — the harden watchdog's historical reset schedule,
	// measured in whatever unit the caller's Sleep hook interprets
	// (driver operations for the watchdog, virtual nanoseconds for fleet
	// RPCs).
	DefaultBaseDelay uint64 = 1
	DefaultMaxDelay  uint64 = 1024
)

// Policy describes one bounded-retry schedule. The zero value is the
// repo-wide default: 4 attempts, no delay side effects, no jitter, no
// deadline.
type Policy struct {
	// Attempts is the total call budget, including the first try
	// (default DefaultAttempts).
	Attempts int
	// BaseDelay is the backoff after the first failed attempt; each
	// further failure doubles it up to MaxDelay. Defaults are
	// DefaultBaseDelay/DefaultMaxDelay.
	BaseDelay uint64
	MaxDelay  uint64
	// JitterSeed, when non-zero, draws each delay uniformly from
	// [delay/2, delay] out of a splitmix64 stream seeded here. Zero keeps
	// the schedule exact (the legacy loops had no jitter).
	JitterSeed uint64
	// Budget is the total delay budget across one Do call, in the same
	// unit as the delays; once the accumulated delay would exceed it, Do
	// stops early and returns the last error (an RPC deadline). Zero
	// means unlimited.
	Budget uint64
	// Clock, when set together with Budget, charges real elapsed time
	// (Clock.Now deltas around each attempt) against the budget as well,
	// so a deadline also covers time spent inside fn. Nil charges only
	// the backoff delays.
	Clock vclock.Clock
	// Sleep receives each backoff delay. Nil means delays have no side
	// effect — the op-counted deterministic mode the legacy loops used.
	Sleep func(delay uint64)
	// OnError is invoked after every failed attempt (1-based), matching
	// the legacy loops' per-failure counter increments.
	OnError func(attempt int, err error)
}

func (p Policy) withDefaults() Policy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultAttempts
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	return p
}

// Do calls fn up to p.Attempts times, backing off between failures, and
// returns nil on the first success or the last error verbatim (no
// wrapping: callers' errors.Is/As chains must keep working exactly as they
// did with the hand-rolled loops).
func (p Policy) Do(fn func() error) error {
	p = p.withDefaults()
	b := p.NewBackoff()
	var spent uint64
	var start uint64
	if p.Budget > 0 && p.Clock != nil {
		start = p.Clock.Now()
	}
	var err error
	for attempt := 1; ; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		if p.OnError != nil {
			p.OnError(attempt, err)
		}
		if attempt >= p.Attempts {
			return err
		}
		d := b.Next()
		spent += d
		if p.Budget > 0 {
			elapsed := spent
			if p.Clock != nil {
				elapsed += p.Clock.Now() - start
			}
			if elapsed > p.Budget {
				return err
			}
		}
		if p.Sleep != nil {
			p.Sleep(d)
		}
	}
}

// NewBackoff returns the policy's delay sequence as a stateful generator,
// for callers that own their own attempt loop (the harden watchdog counts
// driver operations between resets rather than calling Do).
func (p Policy) NewBackoff() *Backoff {
	p = p.withDefaults()
	return &Backoff{base: p.BaseDelay, max: p.MaxDelay, rng: p.JitterSeed}
}

// Backoff produces the capped exponential delay sequence base, 2·base,
// 4·base, …, max, max, … — optionally jittered into [d/2, d]. The zero
// value is not ready; use Policy.NewBackoff.
type Backoff struct {
	base, max uint64
	cur       uint64
	rng       uint64 // splitmix64 state; zero = no jitter
}

// Next returns the next delay in the sequence.
func (b *Backoff) Next() uint64 {
	if b.cur == 0 {
		b.cur = b.base
	} else if b.cur < b.max {
		b.cur *= 2
		if b.cur > b.max {
			b.cur = b.max
		}
	}
	d := b.cur
	if b.rng != 0 && d > 1 {
		// Half-jitter: deterministic for a given seed, still spreads a
		// thundering herd of controllers over [d/2, d].
		lo := d / 2
		d = lo + b.next()%(d-lo+1)
	}
	return d
}

// Reset restarts the sequence from the base delay (the jitter stream keeps
// advancing, so restarted schedules do not re-correlate).
func (b *Backoff) Reset() { b.cur = 0 }

// next advances the splitmix64 jitter stream.
func (b *Backoff) next() uint64 {
	b.rng += 0x9e3779b97f4a7c15
	z := b.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
